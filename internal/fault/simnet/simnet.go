// Package simnet is a randomized network-fault soak harness for the
// replication protocol: a seeded source workload is shipped over a
// fault-injected in-memory network (drops, duplicates, reorders,
// truncations, cuts, dial failures, delays) into a warehouse, with an
// optional hard restart of the server process mid-stream, and the
// final warehouse state must be byte-equivalent to the source no
// matter what the network did.
//
// One Run is:
//
//  1. Workload pass: a deterministic DML stream (inserts, key-targeted
//     updates and deletes) runs against a source engine through the
//     op-delta capture wrapper. The source table digest is ground
//     truth.
//  2. Replication pass: a netrepl server, shipper, and applier move
//     the captured op log across a fault.Net whose fault schedule is
//     derived from the seed. Roughly half the seeds kill the server
//     and the shipper mid-stream — no SHUTDOWN frame, connections
//     severed, all shipper state lost — and restart both over the
//     server's surviving queue directory, so resume-from-durable-LSN
//     runs from a blank client against recovered server state.
//  3. Verdict: the run converges when the server acked every source
//     op, the applied log's high seq matches, and the warehouse
//     replica's digest equals the source digest. Anything else is a
//     lost or duplicated transaction.
//
// The workload, fault schedule, and restart decision are deterministic
// per seed; delivery timing is not (goroutines race), but the verdict
// must be convergence for every seed. Config.UnsafeAcceptOutOfOrder
// re-opens a pre-fix protocol hole (accepting DELTA batches that do
// not chain onto the durable watermark) so the sweep can demonstrate
// the silent-loss failure mode the chain check closes.
package simnet

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/fault"
	"opdelta/internal/obs"
	"opdelta/internal/opdelta"
	netrepl "opdelta/internal/transport/net"
	"opdelta/internal/transport/retry"
	"opdelta/internal/wal"
	"opdelta/internal/warehouse"
)

// Config parameterizes one harness run.
type Config struct {
	// Seed drives the workload, the fault schedule, and the restart
	// decision.
	Seed int64
	// Txns is the number of source transactions. Default 24.
	Txns int
	// Timeout bounds the replication pass. Default 30s.
	Timeout time.Duration
	// Profile overrides the seed-derived fault profile when non-nil.
	Profile *fault.NetProfile
	// UnsafeAcceptOutOfOrder re-opens the pre-fix server hole: DELTA
	// batches are accepted even when they do not chain onto the durable
	// watermark. Runs with it set may (and for reorder-heavy profiles
	// do) end with Converged=false — that divergence is the point.
	UnsafeAcceptOutOfOrder bool
}

// Report summarizes one run.
type Report struct {
	Seed   int64
	Txns   int
	MaxSeq uint64 // highest op seq in the source log
	// SourceDigest fingerprints the source table — a pure function of
	// the seed, which the determinism test relies on.
	SourceDigest string
	// WarehouseDigest fingerprints the replica after the run.
	WarehouseDigest string
	// Converged: all ops acked, applied, and the digests match.
	Converged bool
	// Restarted: the server and shipper were hard-killed mid-stream and
	// restarted.
	Restarted bool
	// Faults is what the network actually injected.
	Faults fault.NetStats
}

const partsDDL = `CREATE TABLE parts (
	part_id BIGINT NOT NULL, status VARCHAR, qty BIGINT, last_modified TIMESTAMP
) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`

// fixedNow pins both engine clocks so the engine-stamped timestamp
// column matches between source and replica and digests are seed-pure.
func fixedNow() time.Time { return time.Unix(1_600_000_000, 0).UTC() }

// profileFor derives a fault schedule from the seed: every run gets a
// different mix, some nearly clean, some hostile.
func profileFor(seed int64, rng *rand.Rand) fault.NetProfile {
	return fault.NetProfile{
		Seed:         seed,
		DropProb:     0.08 * rng.Float64(),
		DupProb:      0.08 * rng.Float64(),
		ReorderProb:  0.10 * rng.Float64(),
		TruncateProb: 0.03 * rng.Float64(),
		CutProb:      0.02 * rng.Float64(),
		DialFailProb: 0.15 * rng.Float64(),
		DelayProb:    0.20 * rng.Float64(),
		MaxDelay:     500 * time.Microsecond,
	}
}

// Run executes one seeded soak and reports the verdict. A run that
// fails to converge returns a non-nil error unless the pre-fix hole is
// open (then divergence is reported, not failed, so the sweep can
// count it).
func Run(cfg Config) (*Report, error) {
	if cfg.Txns <= 0 {
		cfg.Txns = 24
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	root, err := os.MkdirTemp("", "simnet")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	// Workload pass: capture a deterministic DML stream at the source.
	src, err := engine.Open(filepath.Join(root, "src"), engine.Options{WALSync: wal.SyncFlush, Now: fixedNow})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	if _, err := src.Exec(nil, partsDDL); err != nil {
		return nil, err
	}
	tbl, err := src.Table("parts")
	if err != nil {
		return nil, err
	}
	oplog, err := opdelta.NewTableLog(src)
	if err != nil {
		return nil, err
	}
	view := opdelta.ViewDef{
		Name: "slim_parts", Source: "parts",
		Project:  []string{"part_id", "status"},
		SourcePK: "part_id", SourceTS: "last_modified",
	}
	capture := &opdelta.Capture{DB: src, Log: oplog, Analyzer: opdelta.NewAnalyzer(view)}
	if err := workload(capture, rng, cfg.Txns); err != nil {
		return nil, err
	}
	ops, err := oplog.Read(0)
	if err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("simnet seed %d: empty workload", cfg.Seed)
	}
	rep := &Report{Seed: cfg.Seed, Txns: cfg.Txns, MaxSeq: ops[len(ops)-1].Seq}
	if rep.SourceDigest, err = tableDigest(src, "parts"); err != nil {
		return nil, err
	}

	// Replication pass.
	profile := profileFor(cfg.Seed, rng)
	if cfg.Profile != nil {
		p := *cfg.Profile
		p.Seed = cfg.Seed
		profile = p
	}
	rep.Restarted = rng.Intn(2) == 0
	schemaOf := func(table string) (*catalog.Schema, error) {
		t, err := src.Table(table)
		if err != nil {
			return nil, err
		}
		return t.Schema, nil
	}

	wh, err := engine.Open(filepath.Join(root, "wh"), engine.Options{WALSync: wal.SyncFlush, Now: fixedNow})
	if err != nil {
		return nil, err
	}
	defer wh.Close()
	w := warehouse.New(wh)
	if err := w.RegisterReplica("parts", tbl.Schema, "part_id", "last_modified"); err != nil {
		return nil, err
	}
	applied, err := warehouse.EnsureAppliedLog(w)
	if err != nil {
		return nil, err
	}
	integ := &warehouse.ParallelIntegrator{W: w, Workers: 2, Applied: applied}

	// Every batch is traced (default 1-in-1 sampling): the soak doubles
	// as a leak check on the persist→apply span handoff under faults.
	spans := obs.NewSpanTracer(obs.NewRegistry(), 512)
	pendingHandoffs := 0

	topicDir := filepath.Join(root, "topics")
	deadline := time.Now().Add(cfg.Timeout)
	runPhase := func(seedShift int64, target func(acked func() uint64) bool) (*fault.NetStats, error) {
		nw := fault.NewNet(withSeed(profile, cfg.Seed+seedShift))
		srv := netrepl.NewServer(netrepl.ServerConfig{
			Dir: topicDir, UnsafeAcceptOutOfOrder: cfg.UnsafeAcceptOutOfOrder,
			Spans: spans,
		})
		serveDone := make(chan struct{})
		go func() { defer close(serveDone); srv.Serve(nw.Listener()) }()
		topic, err := srv.Topic("src")
		if err != nil {
			return nil, err
		}
		sh := netrepl.NewShipper(netrepl.ShipperConfig{
			Source: "src", Dial: nw.Dial,
			Fetch: oplog.Read, SchemaOf: schemaOf,
			BatchOps: 3, Window: 3,
			Retry:      retry.Policy{Base: time.Millisecond, Cap: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
			AckTimeout: 40 * time.Millisecond,
			PollEvery:  time.Millisecond,
			Spans:      spans,
		})
		ap := &netrepl.Applier{Topic: topic, Integrator: integ, SchemaOf: schemaOf, PollEvery: time.Millisecond, Spans: spans}
		stopShip := make(chan struct{})
		stopApply := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		var shipErr, applyErr error
		go func() { defer wg.Done(); shipErr = sh.Run(stopShip) }()
		go func() { defer wg.Done(); applyErr = ap.Run(stopApply) }()
		met := target == nil
		for target != nil && time.Now().Before(deadline) {
			if target(sh.Acked) {
				met = true
				break
			}
			time.Sleep(time.Millisecond)
		}
		// Kill order mimics the failure being simulated: the network dies
		// first (no SHUTDOWN can be delivered), then the endpoints stop,
		// and only then does the server close its queues — the applier
		// must not race a queue that Shutdown is closing.
		nw.Close()
		close(stopShip)
		close(stopApply)
		wg.Wait()
		pendingHandoffs = topic.PendingSpanHandoffs()
		srv.Shutdown()
		<-serveDone
		stats := nw.Stats()
		if applyErr != nil {
			return &stats, fmt.Errorf("simnet seed %d: applier: %w", cfg.Seed, applyErr)
		}
		if shipErr != nil {
			return &stats, fmt.Errorf("simnet seed %d: shipper: %w", cfg.Seed, shipErr)
		}
		if !met {
			return &stats, fmt.Errorf("simnet seed %d: phase timed out", cfg.Seed)
		}
		return &stats, nil
	}

	addStats := func(s *fault.NetStats) {
		if s == nil {
			return
		}
		rep.Faults.Drops += s.Drops
		rep.Faults.Dups += s.Dups
		rep.Faults.Reorders += s.Reorders
		rep.Faults.Truncates += s.Truncates
		rep.Faults.Delays += s.Delays
		rep.Faults.Cuts += s.Cuts
		rep.Faults.DialFails += s.DialFails
	}

	if rep.Restarted {
		// Phase 1 runs to roughly the middle, then everything dies hard:
		// the restarted phase gets a brand-new shipper with zero state.
		half := rep.MaxSeq / 2
		stats, err := runPhase(0, func(acked func() uint64) bool { return acked() >= half })
		addStats(stats)
		if err != nil {
			return rep, err
		}
	}
	want := rep.MaxSeq
	stats, err := runPhase(1_000_003, func(acked func() uint64) bool {
		if acked() < want {
			return false
		}
		max, err := applied.MaxSeq()
		return err == nil && max >= want
	})
	addStats(stats)
	if err != nil {
		if cfg.UnsafeAcceptOutOfOrder {
			// With the hole open, acks can stall behind dropped-and-skipped
			// ops or the run can wedge; either way it is a demonstration of
			// non-convergence, not a harness failure.
			rep.WarehouseDigest, _ = tableDigest(wh, "parts")
			return rep, nil
		}
		return rep, err
	}

	// Convergence dequeued every seq, so every registered span handoff
	// must have been claimed — a residue is an applier-side span leak.
	if pendingHandoffs != 0 {
		return rep, fmt.Errorf("simnet seed %d: %d span handoffs leaked after convergence", cfg.Seed, pendingHandoffs)
	}
	if len(spans.Recent(1)) == 0 {
		return rep, fmt.Errorf("simnet seed %d: converged run recorded no spans", cfg.Seed)
	}

	if rep.WarehouseDigest, err = tableDigest(wh, "parts"); err != nil {
		return rep, err
	}
	rep.Converged = rep.WarehouseDigest == rep.SourceDigest
	if !rep.Converged && !cfg.UnsafeAcceptOutOfOrder {
		return rep, fmt.Errorf("simnet seed %d: replica diverged: source %s, warehouse %s",
			cfg.Seed, rep.SourceDigest, rep.WarehouseDigest)
	}
	return rep, nil
}

func withSeed(p fault.NetProfile, seed int64) fault.NetProfile {
	p.Seed = seed
	return p
}

// workload issues Txns transactions of DML against the capture
// wrapper: inserts of fresh keys, updates and deletes of live ones.
func workload(c *opdelta.Capture, rng *rand.Rand, txns int) error {
	for _, stmt := range genStatements(rng, txns) {
		if _, err := c.Exec(nil, stmt); err != nil {
			return err
		}
	}
	return nil
}

// genStatements derives the deterministic DML stream for a seed without
// executing it: inserts of fresh keys, updates and deletes of live
// ones. The rng draw order matches what workload always did, so seeds
// keep their digests; the bootstrap soak uses the pre-generated list so
// its free-running writer goroutine cannot perturb seed purity.
func genStatements(rng *rand.Rand, txns int) []string {
	stmts := make([]string, 0, txns)
	var live []int
	next := 0
	for i := 0; i < txns; i++ {
		roll := rng.Float64()
		switch {
		case len(live) > 0 && roll < 0.25:
			j := rng.Intn(len(live))
			id := live[j]
			stmts = append(stmts, fmt.Sprintf(`UPDATE parts SET status = 'hot', qty = %d WHERE part_id = %d`, rng.Intn(500), id))
		case len(live) > 1 && roll < 0.40:
			j := rng.Intn(len(live))
			id := live[j]
			live = append(live[:j], live[j+1:]...)
			stmts = append(stmts, fmt.Sprintf(`DELETE FROM parts WHERE part_id = %d`, id))
		default:
			next++
			live = append(live, next)
			stmts = append(stmts, fmt.Sprintf(`INSERT INTO parts (part_id, status, qty) VALUES (%d, 'new', %d)`, next, rng.Intn(500)))
		}
	}
	return stmts
}

// tableDigest fingerprints a table's rows, order-independently.
func tableDigest(db *engine.DB, name string) (string, error) {
	var rows []string
	if err := db.ScanTable(nil, name, func(row catalog.Tuple) error {
		rows = append(rows, fmt.Sprint(row))
		return nil
	}); err != nil {
		return "", err
	}
	sort.Strings(rows)
	crc := crc32.ChecksumIEEE([]byte(strings.Join(rows, "\n")))
	return fmt.Sprintf("%d:%08x", len(rows), crc), nil
}
