package simnet

import (
	"flag"
	"testing"
	"time"

	"opdelta/internal/fault"
)

// netseeds bounds the randomized network-fault sweep. CI soak runs
// raise it: go test ./internal/fault/simnet/ -netseeds 200
var netseeds = flag.Int("netseeds", 20, "number of distinct network-fault seeds to run")

// TestNetworkFaultSeeds is the soak sweep: for each seed, ship a
// seeded workload across a fault-injected network (hard-restarting
// both endpoints on about half the seeds) and require byte-equivalent
// convergence.
func TestNetworkFaultSeeds(t *testing.T) {
	restarts, faults := 0, uint64(0)
	for seed := int64(1); seed <= int64(*netseeds); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rep, err := Run(Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Converged {
				t.Fatalf("seed %d: not converged: source %s, warehouse %s", seed, rep.SourceDigest, rep.WarehouseDigest)
			}
			if rep.Restarted {
				restarts++
			}
			faults += rep.Faults.Drops + rep.Faults.Dups + rep.Faults.Reorders +
				rep.Faults.Truncates + rep.Faults.Cuts + rep.Faults.DialFails
			t.Logf("seed %d: maxSeq=%d restarted=%v faults=%+v", seed, rep.MaxSeq, rep.Restarted, rep.Faults)
		})
	}
	if *netseeds >= 10 {
		if restarts == 0 {
			t.Fatalf("none of %d seeds restarted mid-stream; the scenario is inert", *netseeds)
		}
		if faults == 0 {
			t.Fatalf("no faults injected across %d seeds; the scenario is inert", *netseeds)
		}
	}
}

// TestWorkloadDeterminism re-runs seeds and demands identical source
// digests and op counts — what makes a failing seed reproducible.
func TestWorkloadDeterminism(t *testing.T) {
	for _, seed := range []int64{2, 9, 17} {
		a, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d first run: %v", seed, err)
		}
		b, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d second run: %v", seed, err)
		}
		if a.SourceDigest != b.SourceDigest || a.MaxSeq != b.MaxSeq || a.Restarted != b.Restarted {
			t.Fatalf("seed %d not deterministic:\n first: %+v\nsecond: %+v", seed, a, b)
		}
	}
}

// TestPreFixOutOfOrderLoss demonstrates the failure mode the DELTA
// chain check closes: with the check disabled (the pre-fix server) and
// a reorder-heavy network, at least one seed must lose ops — the
// watermark jumps over a batch that never arrived, the skipped ops are
// later dropped as replays, and the replica silently diverges under a
// clean ack stream. The same seeds with the check enabled all converge
// (covered by TestNetworkFaultSeeds).
func TestPreFixOutOfOrderLoss(t *testing.T) {
	profile := fault.NetProfile{
		ReorderProb: 0.5,
		MaxDelay:    500 * time.Microsecond,
	}
	diverged := 0
	for seed := int64(1); seed <= 12; seed++ {
		rep, err := Run(Config{
			Seed: seed, Profile: &profile,
			UnsafeAcceptOutOfOrder: true,
			Timeout:                15 * time.Second,
		})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if !rep.Converged {
			diverged++
			t.Logf("seed %d: diverged as expected (source %s, warehouse %s)", seed, rep.SourceDigest, rep.WarehouseDigest)
		}
	}
	if diverged == 0 {
		t.Fatal("pre-fix server converged on every reorder-heavy seed; the demonstration is inert")
	}
}
