package extract

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/snapdiff"
	"opdelta/internal/sqlmini"
	"opdelta/internal/wal"
)

// Extractor is a delta extraction method: it pushes the deltas observed
// since its last run into sink and returns how many it produced.
type Extractor interface {
	Extract(sink Sink) (int, error)
}

// TimestampExtractor implements §3.1.1: SELECT rows whose
// engine-maintained timestamp column advanced past a cursor. The method
// requires a table scan (unless the predicate hits an index), sees only
// the final state of each row (emitted as Upsert), and is blind to
// deletes — all three limitations the paper documents.
type TimestampExtractor struct {
	DB    *engine.DB
	Table string
	// Since is the extraction cursor: rows with ts > Since qualify.
	Since time.Time
}

// Extract scans for modified rows and advances the cursor to the
// largest timestamp seen.
func (e *TimestampExtractor) Extract(sink Sink) (int, error) {
	t, err := e.DB.Table(e.Table)
	if err != nil {
		return 0, err
	}
	if t.TSCol < 0 {
		return 0, fmt.Errorf("extract: table %s has no timestamp column; the timestamp method %s",
			e.Table, "is only applicable to sources that natively support time stamps")
	}
	tsName := t.Schema.Column(t.TSCol).Name
	sel := &sqlmini.Select{
		Table: e.Table,
		Where: &sqlmini.Binary{
			Op: sqlmini.OpGt,
			L:  &sqlmini.ColRef{Name: tsName},
			R:  &sqlmini.Literal{Val: catalog.NewTime(e.Since)},
		},
	}
	n := 0
	maxTS := e.Since
	_, err = e.DB.IterateSelect(nil, sel, func(tup catalog.Tuple) error {
		ts := tup[t.TSCol].Time()
		if ts.After(maxTS) {
			maxTS = ts
		}
		n++
		return sink.Write(Delta{Kind: KindUpsert, Table: e.Table, After: tup})
	})
	if err != nil {
		return 0, err
	}
	e.Since = maxTS
	return n, nil
}

// TriggerCapture implements §3.1.3: row-level triggers that write
// before/after images into a capture table within the user transaction.
// Install begins capture; Drain exports and clears what accumulated.
type TriggerCapture struct {
	DB    *engine.DB
	Table string
	// Remote, when set, sends every captured delta to a remote capture
	// table over a link instead of the local one (§3.1.3's expensive
	// variant).
	Remote *RemoteTableSink

	local       *TableSink
	triggerName string
}

// Install creates the capture table (if needed) and registers the
// trigger.
func (c *TriggerCapture) Install() error {
	if c.triggerName != "" {
		return fmt.Errorf("extract: trigger capture already installed on %s", c.Table)
	}
	sink, err := EnsureDeltaTable(c.DB, c.Table)
	if err != nil {
		return err
	}
	sink.ViaSQL = true // trigger bodies run as interpreted SQL
	c.local = sink
	c.triggerName = "capture_" + c.Table
	trig := engine.Trigger{
		Name: c.triggerName, OnInsert: true, OnDelete: true, OnUpdate: true,
		Fn: func(tx *engine.Tx, ev engine.TriggerEvent) error {
			d := Delta{Table: c.Table, Txn: uint64(ev.Txn)}
			switch ev.Op {
			case engine.TrigInsert:
				d.Kind, d.After = KindInsert, ev.After
			case engine.TrigDelete:
				d.Kind, d.Before = KindDelete, ev.Before
			case engine.TrigUpdate:
				d.Kind, d.Before, d.After = KindUpdate, ev.Before, ev.After
			}
			if c.Remote != nil {
				// Remote capture pays the link plus a remote
				// transaction per row; it cannot join the local user
				// transaction — one of the reasons the paper rejects it.
				return c.Remote.Write(d)
			}
			d.Seq = c.local.seq.Add(1)
			return c.local.WriteTx(tx, d)
		},
	}
	return c.DB.CreateTrigger(c.Table, trig)
}

// Uninstall removes the trigger (the capture table is kept).
func (c *TriggerCapture) Uninstall() error {
	if c.triggerName == "" {
		return nil
	}
	err := c.DB.DropTrigger(c.Table, c.triggerName)
	c.triggerName = ""
	return err
}

// Extract drains the local capture table into sink.
func (c *TriggerCapture) Extract(sink Sink) (int, error) {
	if c.local == nil {
		return 0, errors.New("extract: trigger capture not installed")
	}
	return c.local.Drain(sink)
}

// LocalSink exposes the capture table sink (benchmarks inspect it).
func (c *TriggerCapture) LocalSink() *TableSink { return c.local }

// LogMiner implements §3.1.4: decode value deltas out of WAL segments.
// Only changes of committed transactions are emitted, in log order.
// The miner needs the source schemas to interpret the (otherwise
// opaque) physiological records — the coupling the paper warns about —
// and a downstream applier must verify the destination schema matches.
type LogMiner struct {
	// Dir is the log directory: the engine's archive directory for the
	// paper's archive-log shipping, or the live WAL directory.
	Dir string
	// Schemas maps table name -> schema for the tables of interest;
	// records of other tables are skipped.
	Schemas map[string]*catalog.Schema
	// FromLSN is the mining cursor: records at or below it are skipped.
	FromLSN wal.LSN
}

// Extract mines committed changes after the cursor into sink and
// advances the cursor.
func (m *LogMiner) Extract(sink Sink) (int, error) {
	recs, err := wal.ReadAll(m.Dir)
	if err != nil {
		return 0, err
	}
	committed := map[uint64]bool{}
	for _, r := range recs {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = true
		}
	}
	n := 0
	maxLSN := m.FromLSN
	for _, r := range recs {
		if r.LSN <= m.FromLSN {
			continue
		}
		if r.LSN > maxLSN {
			maxLSN = r.LSN
		}
		if !committed[r.Txn] {
			continue
		}
		schema, care := m.Schemas[r.Table]
		if !care {
			continue
		}
		d := Delta{Table: r.Table, Txn: r.Txn, Seq: uint64(r.LSN)}
		switch r.Type {
		case wal.RecInsert:
			d.Kind = KindInsert
			if d.After, err = catalog.DecodeTuple(schema, r.After); err != nil {
				return n, fmt.Errorf("extract: log record %d: %w", r.LSN, err)
			}
		case wal.RecDelete:
			d.Kind = KindDelete
			if d.Before, err = catalog.DecodeTuple(schema, r.Before); err != nil {
				return n, fmt.Errorf("extract: log record %d: %w", r.LSN, err)
			}
		case wal.RecUpdate:
			d.Kind = KindUpdate
			if d.Before, err = catalog.DecodeTuple(schema, r.Before); err != nil {
				return n, fmt.Errorf("extract: log record %d: %w", r.LSN, err)
			}
			if d.After, err = catalog.DecodeTuple(schema, r.After); err != nil {
				return n, fmt.Errorf("extract: log record %d: %w", r.LSN, err)
			}
		default:
			continue
		}
		if err := sink.Write(d); err != nil {
			return n, err
		}
		n++
	}
	m.FromLSN = maxLSN
	return n, nil
}

// SnapshotExtractor implements §3.1.2: take a snapshot, diff it against
// the previous one, rotate. The first extraction reports the whole
// table as inserts (there is no previous snapshot).
type SnapshotExtractor struct {
	DB    *engine.DB
	Table string
	// Dir holds the rotating snapshot pair.
	Dir string
	// WindowRows selects the window diff algorithm with that window
	// size; zero uses the exact sort-merge (requires a primary key).
	WindowRows int

	hasPrev bool
}

func (e *SnapshotExtractor) prevPath() string {
	return filepath.Join(e.Dir, e.Table+".prev.snap")
}

func (e *SnapshotExtractor) currPath() string {
	return filepath.Join(e.Dir, e.Table+".curr.snap")
}

// Extract snapshots the table, diffs against the previous snapshot and
// emits the changes.
func (e *SnapshotExtractor) Extract(sink Sink) (int, error) {
	t, err := e.DB.Table(e.Table)
	if err != nil {
		return 0, err
	}
	if _, err := snapdiff.WriteSnapshot(e.DB, e.Table, e.currPath()); err != nil {
		return 0, err
	}
	n := 0
	emit := func(c snapdiff.Change) error {
		d := Delta{Table: e.Table}
		switch c.Kind {
		case snapdiff.ChangeInsert:
			d.Kind, d.After = KindInsert, c.After
		case snapdiff.ChangeDelete:
			d.Kind, d.Before = KindDelete, c.Before
		case snapdiff.ChangeUpdate:
			d.Kind, d.Before, d.After = KindUpdate, c.Before, c.After
		}
		n++
		return sink.Write(d)
	}
	if !e.hasPrev {
		// No baseline: everything is an insert.
		r, err := snapdiff.OpenReader(e.currPath(), t.Schema)
		if err != nil {
			return 0, err
		}
		for {
			tup, err := r.Next()
			if err != nil {
				break
			}
			if err := emit(snapdiff.Change{Kind: snapdiff.ChangeInsert, After: tup}); err != nil {
				r.Close()
				return n, err
			}
		}
		r.Close()
	} else {
		keyCol := t.PKCol
		if keyCol < 0 {
			keyCol = 0
		}
		if e.WindowRows > 0 {
			err = snapdiff.DiffWindow(e.prevPath(), e.currPath(), t.Schema, keyCol, e.WindowRows, emit)
		} else {
			if t.PKCol < 0 {
				return 0, fmt.Errorf("extract: sort-merge snapshot diff needs a primary key on %s", e.Table)
			}
			err = snapdiff.DiffSortMerge(e.prevPath(), e.currPath(), t.Schema, keyCol, emit)
		}
		if err != nil {
			return n, err
		}
	}
	if err := rotate(e.currPath(), e.prevPath()); err != nil {
		return n, err
	}
	e.hasPrev = true
	return n, nil
}

func rotate(curr, prev string) error {
	return os.Rename(curr, prev)
}

// PrimeFromExisting marks the extractor as having a previous snapshot
// already on disk (a daemon resuming after restart), so the next
// Extract diffs against it instead of reporting the whole table.
func (e *SnapshotExtractor) PrimeFromExisting() { e.hasPrev = true }
