package extract

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/fault"
	"opdelta/internal/loadutil"
	"opdelta/internal/transport"
)

// FileSink streams deltas to an ASCII differential file — the paper's
// "output to file" shape, the cheaper of the two output paths it
// measures for timestamp extraction.
type FileSink struct {
	schema *catalog.Schema
	f      fault.File
	bw     *bufio.Writer
	n      atomic.Int64
}

// NewFileSink creates the differential file at path for deltas of the
// given source schema.
func NewFileSink(path string, schema *catalog.Schema) (*FileSink, error) {
	return NewFileSinkFS(fault.OS, path, schema)
}

// NewFileSinkFS is NewFileSink through an injectable filesystem.
func NewFileSinkFS(fsys fault.FS, path string, schema *catalog.Schema) (*FileSink, error) {
	f, err := fault.OrOS(fsys).Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{schema: schema, f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Write appends one delta line.
func (s *FileSink) Write(d Delta) error {
	line := FormatDeltaLine(d, s.schema, loadutil.FormatValue)
	if _, err := s.bw.WriteString(line); err != nil {
		return err
	}
	if err := s.bw.WriteByte('\n'); err != nil {
		return err
	}
	s.n.Add(1)
	return nil
}

// N returns deltas written so far.
func (s *FileSink) N() int64 { return s.n.Load() }

// Close flushes and syncs the file.
func (s *FileSink) Close() error {
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// ParseDeltaLine parses one differential-file line produced by
// FormatDeltaLine back into a Delta. It is the exact inverse used by
// the round-trip property tests.
func ParseDeltaLine(line string, schema *catalog.Schema) (Delta, error) {
	ncols := schema.NumColumns()
	fields := strings.Split(line, "\t")
	if len(fields) != 4+2*ncols {
		return Delta{}, fmt.Errorf("extract: delta line has %d fields, want %d", len(fields), 4+2*ncols)
	}
	kind, err := KindFromString(fields[0])
	if err != nil {
		return Delta{}, err
	}
	txn, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return Delta{}, fmt.Errorf("extract: bad txn %q", fields[1])
	}
	seq, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return Delta{}, fmt.Errorf("extract: bad seq %q", fields[2])
	}
	d := Delta{Kind: kind, Txn: txn, Seq: seq, Table: fields[3]}
	parseImage := func(cols []string) (catalog.Tuple, error) {
		allNull := true
		tup := make(catalog.Tuple, ncols)
		for i, fld := range cols {
			v, err := loadutil.ParseValue(fld, schema.Column(i).Type)
			if err != nil {
				return nil, err
			}
			tup[i] = v
			if !v.IsNull() {
				allNull = false
			}
		}
		if allNull {
			return nil, nil
		}
		return tup, nil
	}
	if d.Before, err = parseImage(fields[4 : 4+ncols]); err != nil {
		return Delta{}, err
	}
	if d.After, err = parseImage(fields[4+ncols:]); err != nil {
		return Delta{}, err
	}
	return d, nil
}

// ReadDeltaFile parses a differential file written by FileSink.
func ReadDeltaFile(path string, schema *catalog.Schema) ([]Delta, error) {
	return ReadDeltaFileFS(fault.OS, path, schema)
}

// ReadDeltaFileFS is ReadDeltaFile through an injectable filesystem.
func ReadDeltaFileFS(fsys fault.FS, path string, schema *catalog.Schema) ([]Delta, error) {
	f, err := fault.OrOS(fsys).Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Delta
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		d, err := ParseDeltaLine(line, schema)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// DeltaTableName names the capture table for a source table.
func DeltaTableName(table string) string { return strings.ToLower(table) + "__delta" }

// DeltaTableSchema builds the capture-table schema for a source schema:
// bookkeeping columns followed by nullable before- and after-image
// copies of every source column.
func DeltaTableSchema(src *catalog.Schema) *catalog.Schema {
	cols := []catalog.Column{
		{Name: "d_seq", Type: catalog.TypeInt64, NotNull: true},
		{Name: "d_op", Type: catalog.TypeString, NotNull: true},
		{Name: "d_txn", Type: catalog.TypeInt64, NotNull: true},
	}
	for _, c := range src.Columns() {
		cols = append(cols, catalog.Column{Name: "b_" + c.Name, Type: c.Type})
	}
	for _, c := range src.Columns() {
		cols = append(cols, catalog.Column{Name: "a_" + c.Name, Type: c.Type})
	}
	return catalog.NewSchema(cols...)
}

// deltaToRow flattens a delta into a capture-table row.
func deltaToRow(d Delta, src *catalog.Schema) catalog.Tuple {
	ncols := src.NumColumns()
	row := make(catalog.Tuple, 3+2*ncols)
	row[0] = catalog.NewInt(int64(d.Seq))
	row[1] = catalog.NewString(d.Kind.String())
	row[2] = catalog.NewInt(int64(d.Txn))
	for i := 0; i < ncols; i++ {
		typ := src.Column(i).Type
		if d.Before != nil {
			row[3+i] = d.Before[i]
		} else {
			row[3+i] = catalog.NewNull(typ)
		}
		if d.After != nil {
			row[3+ncols+i] = d.After[i]
		} else {
			row[3+ncols+i] = catalog.NewNull(typ)
		}
	}
	return row
}

// rowToDelta is the inverse of deltaToRow.
func rowToDelta(row catalog.Tuple, table string, src *catalog.Schema) (Delta, error) {
	kind, err := KindFromString(row[1].Str())
	if err != nil {
		return Delta{}, err
	}
	ncols := src.NumColumns()
	d := Delta{
		Kind:  kind,
		Table: table,
		Seq:   uint64(row[0].Int()),
		Txn:   uint64(row[2].Int()),
	}
	extractImage := func(offset int) catalog.Tuple {
		allNull := true
		tup := make(catalog.Tuple, ncols)
		for i := 0; i < ncols; i++ {
			tup[i] = row[offset+i]
			if !tup[i].IsNull() {
				allNull = false
			}
		}
		if allNull {
			return nil
		}
		return tup
	}
	d.Before = extractImage(3)
	d.After = extractImage(3 + ncols)
	return d, nil
}

// TableSink writes deltas into a capture table inside a database — the
// paper's "output to table" shape. When Tx is set the writes join that
// transaction (how trigger capture uses it); otherwise each delta
// autocommits.
type TableSink struct {
	DB     *engine.DB
	Tx     *engine.Tx
	Table  string // capture table name
	Src    *catalog.Schema
	SrcTab string
	// ViaSQL routes writes through a rendered INSERT statement instead
	// of the prepared tuple path. Trigger capture sets it: commercial
	// row triggers execute their action body as interpreted SQL, which
	// is where the paper's "overhead of an additional triggered
	// insertion" comes from.
	ViaSQL bool
	seq    atomic.Uint64
}

// EnsureDeltaTable creates the capture table for srcTable if missing
// and returns a TableSink bound to it.
func EnsureDeltaTable(db *engine.DB, srcTable string) (*TableSink, error) {
	t, err := db.Table(srcTable)
	if err != nil {
		return nil, err
	}
	name := DeltaTableName(srcTable)
	if _, err := db.Table(name); err != nil {
		if _, err := db.CreateTable(engine.TableDef{Name: name, Schema: DeltaTableSchema(t.Schema)}); err != nil {
			return nil, err
		}
	}
	sink := &TableSink{DB: db, Table: name, Src: t.Schema, SrcTab: srcTable}
	// Resume the sequence after any existing rows.
	var maxSeq int64
	if err := db.ScanTable(nil, name, func(row catalog.Tuple) error {
		if row[0].Int() > maxSeq {
			maxSeq = row[0].Int()
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sink.seq.Store(uint64(maxSeq))
	return sink, nil
}

// Write stores one delta row in the sink's bound transaction (or
// autocommits when none is bound).
func (s *TableSink) Write(d Delta) error { return s.WriteTx(s.Tx, d) }

// WriteTx stores one delta row inside tx. Trigger capture passes the
// firing user transaction here so the captured delta commits and aborts
// with it.
func (s *TableSink) WriteTx(tx *engine.Tx, d Delta) error {
	if d.Seq == 0 {
		d.Seq = s.seq.Add(1)
	}
	row := deltaToRow(d, s.Src)
	if !s.ViaSQL {
		return s.DB.InsertTuple(tx, s.Table, row)
	}
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	b.WriteString(" VALUES (")
	for i, v := range row {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.SQLLiteral())
	}
	b.WriteString(")")
	_, err := s.DB.Exec(tx, b.String())
	return err
}

// Close is a no-op (the capture table persists).
func (s *TableSink) Close() error { return nil }

// Drain reads every captured delta in sequence order into sink and
// clears the capture table.
func (s *TableSink) Drain(sink Sink) (int, error) {
	var deltas []Delta
	if err := s.DB.ScanTable(nil, s.Table, func(row catalog.Tuple) error {
		d, err := rowToDelta(row, s.SrcTab, s.Src)
		if err != nil {
			return err
		}
		deltas = append(deltas, d)
		return nil
	}); err != nil {
		return 0, err
	}
	sortDeltasBySeq(deltas)
	for _, d := range deltas {
		if err := sink.Write(d); err != nil {
			return 0, err
		}
	}
	if _, err := s.DB.Exec(nil, "DELETE FROM "+s.Table); err != nil {
		return 0, err
	}
	return len(deltas), nil
}

func sortDeltasBySeq(ds []Delta) {
	// Insertion sort is fine: drains are usually near-sorted (scan
	// order tracks insertion order).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j-1].Seq > ds[j].Seq; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
}

// RemoteTableSink writes each delta to a capture table in a *different*
// database across a simulated link, paying per-write connection and
// transfer cost — the configuration the paper found "ten to a hundred
// times more expensive" than a local capture table.
type RemoteTableSink struct {
	Remote *TableSink
	Link   *transport.Link
}

// Write ships one delta over the link and stores it remotely in its own
// transaction.
func (s *RemoteTableSink) Write(d Delta) error {
	s.Link.Send(d.EncodedSize(s.Remote.Src))
	return s.Remote.Write(d)
}

// Close is a no-op.
func (s *RemoteTableSink) Close() error { return nil }
