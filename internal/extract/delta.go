// Package extract implements the paper's four database-level delta
// extraction methods against the engine substrate:
//
//   - timestamps (§3.1.1): query rows whose engine-maintained
//     last-modified column advanced — cannot see deletes or
//     intermediate states;
//   - differential snapshots (§3.1.2): dump-and-compare via snapdiff;
//   - row-level triggers (§3.1.3): capture every state change into a
//     delta table inside the user transaction;
//   - log extraction (§3.1.4): mine value deltas out of the WAL
//     archive.
//
// All methods produce value deltas (before/after row images); the
// Op-Delta alternative lives in internal/opdelta.
package extract

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"opdelta/internal/catalog"
)

// Kind classifies a value delta.
type Kind uint8

// Delta kinds. Upsert is produced only by the timestamp method, which
// cannot distinguish a new row from a modified one — one of that
// method's documented weaknesses.
const (
	KindInvalid Kind = iota
	KindInsert
	KindDelete
	KindUpdate
	KindUpsert
)

// String names the delta kind.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "I"
	case KindDelete:
		return "D"
	case KindUpdate:
		return "U"
	case KindUpsert:
		return "S"
	default:
		return "?"
	}
}

// KindFromString parses a Kind name as produced by String.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "I":
		return KindInsert, nil
	case "D":
		return KindDelete, nil
	case "U":
		return KindUpdate, nil
	case "S":
		return KindUpsert, nil
	default:
		return KindInvalid, fmt.Errorf("extract: unknown delta kind %q", s)
	}
}

// Delta is one extracted value delta: row images captured at the
// source. Txn is the source transaction when the method can see it
// (triggers, log mining); zero otherwise (timestamps, snapshots) —
// exactly the transaction-context loss the paper attributes to value
// deltas.
type Delta struct {
	Kind   Kind
	Table  string
	Txn    uint64
	Seq    uint64
	Before catalog.Tuple // DELETE, UPDATE
	After  catalog.Tuple // INSERT, UPDATE, UPSERT
}

// EncodedSize estimates the delta's transport size in bytes: the sum of
// its encoded images plus a small header. Volume comparisons (E10) use
// this.
func (d Delta) EncodedSize(schema *catalog.Schema) int {
	n := 16
	if d.Before != nil {
		if sz, err := catalog.EncodedSize(schema, d.Before); err == nil {
			n += sz
		}
	}
	if d.After != nil {
		if sz, err := catalog.EncodedSize(schema, d.After); err == nil {
			n += sz
		}
	}
	return n
}

// Sink consumes extracted deltas.
type Sink interface {
	Write(d Delta) error
	Close() error
}

// CollectSink gathers deltas in memory (tests and small extractions).
type CollectSink struct {
	Deltas []Delta
}

// Write appends d.
func (s *CollectSink) Write(d Delta) error {
	s.Deltas = append(s.Deltas, d)
	return nil
}

// Close is a no-op.
func (s *CollectSink) Close() error { return nil }

// CountSink counts deltas and accumulates their encoded size.
type CountSink struct {
	Schema *catalog.Schema
	N      int64
	Bytes  int64
}

// Write counts d.
func (s *CountSink) Write(d Delta) error {
	atomic.AddInt64(&s.N, 1)
	if s.Schema != nil {
		atomic.AddInt64(&s.Bytes, int64(d.EncodedSize(s.Schema)))
	}
	return nil
}

// Close is a no-op.
func (s *CountSink) Close() error { return nil }

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Delta) error

// Write invokes the function.
func (f FuncSink) Write(d Delta) error { return f(d) }

// Close is a no-op.
func (f FuncSink) Close() error { return nil }

// FormatDeltaLine renders one delta as a tab-delimited ASCII line
// (kind, txn, seq, table, before image, after image). Image fields use
// the loadutil escaping; absent images render as all-NULL columns.
func FormatDeltaLine(d Delta, schema *catalog.Schema, format func(catalog.Value) string) string {
	var b strings.Builder
	b.WriteString(d.Kind.String())
	b.WriteByte('\t')
	b.WriteString(strconv.FormatUint(d.Txn, 10))
	b.WriteByte('\t')
	b.WriteString(strconv.FormatUint(d.Seq, 10))
	b.WriteByte('\t')
	b.WriteString(d.Table)
	writeImage := func(img catalog.Tuple) {
		for i := 0; i < schema.NumColumns(); i++ {
			b.WriteByte('\t')
			if img == nil {
				b.WriteString(`\N`)
			} else {
				b.WriteString(format(img[i]))
			}
		}
	}
	writeImage(d.Before)
	writeImage(d.After)
	return b.String()
}
