package extract

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/transport"
)

type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock { return &clock{now: time.Date(2000, 3, 1, 0, 0, 0, 0, time.UTC)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Millisecond)
	return c.now
}

func openDB(t *testing.T, opts engine.Options) *engine.DB {
	t.Helper()
	if opts.Now == nil {
		opts.Now = newClock().Now
	}
	db, err := engine.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func createParts(t *testing.T, db *engine.DB) {
	t.Helper()
	if _, err := db.Exec(nil, `CREATE TABLE parts (
		part_id BIGINT NOT NULL, status VARCHAR, qty BIGINT, last_modified TIMESTAMP
	) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`); err != nil {
		t.Fatal(err)
	}
}

func kindCounts(ds []Delta) map[Kind]int {
	out := map[Kind]int{}
	for _, d := range ds {
		out[d.Kind]++
	}
	return out
}

func TestTimestampExtraction(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	db.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 2), (3, 'c', 3)`)

	ex := &TimestampExtractor{DB: db, Table: "parts"}
	var sink CollectSink
	n, err := ex.Extract(&sink)
	if err != nil || n != 3 {
		t.Fatalf("first extract: %d, %v", n, err)
	}
	for _, d := range sink.Deltas {
		if d.Kind != KindUpsert || d.After == nil || d.Before != nil {
			t.Fatalf("timestamp delta shape wrong: %+v", d)
		}
	}
	// Nothing changed: second run is empty.
	sink.Deltas = nil
	n, err = ex.Extract(&sink)
	if err != nil || n != 0 {
		t.Fatalf("idle extract: %d, %v", n, err)
	}
	// Update one row: exactly one upsert.
	db.Exec(nil, `UPDATE parts SET status = 'x' WHERE part_id = 2`)
	n, err = ex.Extract(&sink)
	if err != nil || n != 1 {
		t.Fatalf("after update: %d, %v", n, err)
	}
	if sink.Deltas[0].After[1].Str() != "x" {
		t.Fatalf("delta = %+v", sink.Deltas[0])
	}
	// The documented blind spot: deletes are invisible.
	db.Exec(nil, `DELETE FROM parts WHERE part_id = 1`)
	sink.Deltas = nil
	n, err = ex.Extract(&sink)
	if err != nil || n != 0 {
		t.Fatalf("timestamp method must miss deletes, got %d deltas (%v)", n, err)
	}
	// Intermediate states collapse: two updates, one delta.
	db.Exec(nil, `UPDATE parts SET status = 'mid' WHERE part_id = 3`)
	db.Exec(nil, `UPDATE parts SET status = 'final' WHERE part_id = 3`)
	sink.Deltas = nil
	n, _ = ex.Extract(&sink)
	if n != 1 || sink.Deltas[0].After[1].Str() != "final" {
		t.Fatalf("state-change collapse: n=%d deltas=%v", n, sink.Deltas)
	}
}

func TestTimestampExtractorNeedsTSColumn(t *testing.T) {
	db := openDB(t, engine.Options{})
	db.Exec(nil, `CREATE TABLE plain (id BIGINT)`)
	ex := &TimestampExtractor{DB: db, Table: "plain"}
	if _, err := ex.Extract(&CollectSink{}); err == nil {
		t.Fatal("table without timestamp column must be rejected")
	}
}

func TestTriggerCaptureAllKinds(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	cap := &TriggerCapture{DB: db, Table: "parts"}
	if err := cap.Install(); err != nil {
		t.Fatal(err)
	}
	if err := cap.Install(); err == nil {
		t.Fatal("double install must fail")
	}
	db.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 2)`)
	db.Exec(nil, `UPDATE parts SET status = 'bb' WHERE part_id = 2`)
	db.Exec(nil, `DELETE FROM parts WHERE part_id = 1`)

	var sink CollectSink
	n, err := cap.Extract(&sink)
	if err != nil || n != 4 {
		t.Fatalf("drain: %d, %v", n, err)
	}
	counts := kindCounts(sink.Deltas)
	if counts[KindInsert] != 2 || counts[KindUpdate] != 1 || counts[KindDelete] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Order preserved via sequence numbers.
	for i := 1; i < len(sink.Deltas); i++ {
		if sink.Deltas[i].Seq <= sink.Deltas[i-1].Seq {
			t.Fatal("drain must be in sequence order")
		}
	}
	// Update carries both images; txn ids recorded.
	for _, d := range sink.Deltas {
		if d.Txn == 0 {
			t.Fatal("trigger capture must record source transactions")
		}
		if d.Kind == KindUpdate && (d.Before[1].Str() != "b" || d.After[1].Str() != "bb") {
			t.Fatalf("update images: %+v", d)
		}
	}
	// Drain cleared the capture table.
	n, err = cap.Extract(&sink)
	if err != nil || n != 0 {
		t.Fatalf("second drain: %d, %v", n, err)
	}
	// After uninstall nothing is captured.
	if err := cap.Uninstall(); err != nil {
		t.Fatal(err)
	}
	db.Exec(nil, `INSERT INTO parts (part_id) VALUES (9)`)
	if n, _ := cap.Extract(&CollectSink{}); n != 0 {
		t.Fatalf("captured %d after uninstall", n)
	}
}

func TestTriggerCaptureRollsBackWithUserTxn(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	cap := &TriggerCapture{DB: db, Table: "parts"}
	if err := cap.Install(); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	db.Exec(tx, `INSERT INTO parts (part_id) VALUES (1)`)
	tx.Abort()
	if n, _ := cap.Extract(&CollectSink{}); n != 0 {
		t.Fatalf("captured %d deltas from an aborted transaction", n)
	}
}

func TestTriggerCaptureRemote(t *testing.T) {
	src := openDB(t, engine.Options{})
	createParts(t, src)
	staging := openDB(t, engine.Options{})
	createParts(t, staging) // same DDL so the delta table schema matches
	remoteSink, err := EnsureDeltaTable(staging, "parts")
	if err != nil {
		t.Fatal(err)
	}
	var virt time.Duration
	link := &transport.Link{Latency: time.Millisecond, BandwidthBps: 10_000_000 / 8,
		Sleep: func(d time.Duration) { virt += d }}
	cap := &TriggerCapture{DB: src, Table: "parts",
		Remote: &RemoteTableSink{Remote: remoteSink, Link: link}}
	if err := cap.Install(); err != nil {
		t.Fatal(err)
	}
	db := src
	db.Exec(nil, `INSERT INTO parts (part_id) VALUES (1), (2), (3)`)
	if link.Stats().Messages != 3 {
		t.Fatalf("link messages = %d", link.Stats().Messages)
	}
	if virt == 0 {
		t.Fatal("remote capture must pay link cost")
	}
	// Deltas landed in the staging database.
	var sink CollectSink
	n, err := remoteSink.Drain(&sink)
	if err != nil || n != 3 {
		t.Fatalf("remote drain: %d, %v", n, err)
	}
}

func TestLogMinerCommittedOnly(t *testing.T) {
	clk := newClock()
	db := openDB(t, engine.Options{Now: clk.Now, Archive: true})
	createParts(t, db)
	tbl, _ := db.Table("parts")

	db.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 2)`)
	db.Exec(nil, `UPDATE parts SET qty = qty + 10 WHERE part_id = 1`)
	db.Exec(nil, `DELETE FROM parts WHERE part_id = 2`)
	// An aborted transaction must not be mined.
	tx := db.Begin()
	db.Exec(tx, `INSERT INTO parts (part_id) VALUES (99)`)
	tx.Abort()

	miner := &LogMiner{Dir: db.WALDir(), Schemas: map[string]*catalog.Schema{"parts": tbl.Schema}}
	var sink CollectSink
	n, err := miner.Extract(&sink)
	if err != nil {
		t.Fatal(err)
	}
	counts := kindCounts(sink.Deltas)
	if counts[KindInsert] != 2 || counts[KindUpdate] != 1 || counts[KindDelete] != 1 || n != 4 {
		t.Fatalf("n=%d counts=%v", n, counts)
	}
	for _, d := range sink.Deltas {
		if d.Txn == 0 {
			t.Fatal("log mining preserves transaction ids")
		}
	}
	// Incremental: cursor advanced, nothing new.
	sink.Deltas = nil
	if n, _ := miner.Extract(&sink); n != 0 {
		t.Fatalf("re-mine produced %d", n)
	}
	// New activity is picked up from the cursor.
	db.Exec(nil, `INSERT INTO parts (part_id) VALUES (50)`)
	if n, _ := miner.Extract(&sink); n != 1 {
		t.Fatalf("incremental mine = %d", n)
	}
}

func TestLogMinerFromArchive(t *testing.T) {
	clk := newClock()
	db := openDB(t, engine.Options{Now: clk.Now, Archive: true, WALSegmentSize: 2048})
	createParts(t, db)
	tbl, _ := db.Table("parts")
	for i := 0; i < 100; i++ {
		db.Exec(nil, fmt.Sprintf(`INSERT INTO parts (part_id) VALUES (%d)`, i))
	}
	// Rotate so the tail segment reaches the archive, then mine the
	// archive only — the paper's ship-the-archive-logs topology.
	if err := db.WAL().Rotate(); err != nil {
		t.Fatal(err)
	}
	miner := &LogMiner{Dir: db.ArchiveDir(), Schemas: map[string]*catalog.Schema{"parts": tbl.Schema}}
	var sink CollectSink
	n, err := miner.Extract(&sink)
	if err != nil || n != 100 {
		t.Fatalf("archive mine: %d, %v", n, err)
	}
}

func TestLogMinerIgnoresOtherTables(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	db.Exec(nil, `CREATE TABLE other (id BIGINT)`)
	db.Exec(nil, `INSERT INTO other VALUES (1)`)
	db.Exec(nil, `INSERT INTO parts (part_id) VALUES (1)`)
	tbl, _ := db.Table("parts")
	miner := &LogMiner{Dir: db.WALDir(), Schemas: map[string]*catalog.Schema{"parts": tbl.Schema}}
	var sink CollectSink
	n, err := miner.Extract(&sink)
	if err != nil || n != 1 || sink.Deltas[0].Table != "parts" {
		t.Fatalf("mine: %d, %v, %v", n, err, sink.Deltas)
	}
}

func TestSnapshotExtractor(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	db.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 2), (3, 'c', 3)`)
	ex := &SnapshotExtractor{DB: db, Table: "parts", Dir: t.TempDir()}
	var sink CollectSink
	n, err := ex.Extract(&sink)
	if err != nil || n != 3 {
		t.Fatalf("baseline: %d, %v", n, err)
	}
	db.Exec(nil, `UPDATE parts SET status = 'z' WHERE part_id = 1`)
	db.Exec(nil, `DELETE FROM parts WHERE part_id = 2`)
	db.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (4, 'd', 4)`)
	sink.Deltas = nil
	n, err = ex.Extract(&sink)
	if err != nil || n != 3 {
		t.Fatalf("incremental: %d, %v", n, err)
	}
	counts := kindCounts(sink.Deltas)
	if counts[KindUpdate] != 1 || counts[KindDelete] != 1 || counts[KindInsert] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Unlike timestamps, snapshots DO see deletes — but they also
	// collapse intermediate states.
	db.Exec(nil, `UPDATE parts SET status = 'mid' WHERE part_id = 3`)
	db.Exec(nil, `UPDATE parts SET status = 'fin' WHERE part_id = 3`)
	sink.Deltas = nil
	n, _ = ex.Extract(&sink)
	if n != 1 || sink.Deltas[0].After[1].Str() != "fin" {
		t.Fatalf("collapse: n=%d %v", n, sink.Deltas)
	}
}

func TestSnapshotExtractorWindowVariant(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	for i := 0; i < 40; i++ {
		db.Exec(nil, fmt.Sprintf(`INSERT INTO parts (part_id, qty) VALUES (%d, %d)`, i, i))
	}
	ex := &SnapshotExtractor{DB: db, Table: "parts", Dir: t.TempDir(), WindowRows: 8}
	ex.Extract(&CollectSink{}) // baseline
	db.Exec(nil, `DELETE FROM parts WHERE part_id = 5`)
	var sink CollectSink
	n, err := ex.Extract(&sink)
	if err != nil {
		t.Fatal(err)
	}
	// The window variant may be bulkier but must reach the same state:
	// net effect is one delete of key 5.
	net := map[string]int{}
	for _, d := range sink.Deltas {
		switch d.Kind {
		case KindInsert:
			net[d.After[0].String()]++
		case KindDelete:
			net[d.Before[0].String()]--
		case KindUpdate:
			// no net count change
		}
	}
	for k, v := range net {
		if k == "5" && v != -1 {
			t.Fatalf("key 5 net = %d", v)
		}
		if k != "5" && v != 0 {
			t.Fatalf("key %s net = %d (n=%d)", k, v, n)
		}
	}
}

func TestFileSinkRoundtrip(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	tbl, _ := db.Table("parts")
	path := filepath.Join(t.TempDir(), "deltas.tsv")
	sink, err := NewFileSink(path, tbl.Schema)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2000, 1, 2, 3, 4, 5, 0, time.UTC)
	in := []Delta{
		{Kind: KindInsert, Table: "parts", Txn: 7, Seq: 1,
			After: catalog.Tuple{catalog.NewInt(1), catalog.NewString("a\twith\ttabs"), catalog.NewInt(5), catalog.NewTime(now)}},
		{Kind: KindDelete, Table: "parts", Txn: 8, Seq: 2,
			Before: catalog.Tuple{catalog.NewInt(2), catalog.NewNull(catalog.TypeString), catalog.NewInt(0), catalog.NewTime(now)}},
		{Kind: KindUpdate, Table: "parts", Txn: 9, Seq: 3,
			Before: catalog.Tuple{catalog.NewInt(3), catalog.NewString("x"), catalog.NewInt(1), catalog.NewTime(now)},
			After:  catalog.Tuple{catalog.NewInt(3), catalog.NewString("y"), catalog.NewInt(2), catalog.NewTime(now)}},
	}
	for _, d := range in {
		if err := sink.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	if sink.N() != 3 {
		t.Fatalf("N = %d", sink.N())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDeltaFile(path, tbl.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d deltas", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Kind != b.Kind || a.Txn != b.Txn || a.Seq != b.Seq || a.Table != b.Table {
			t.Fatalf("delta %d header mismatch: %+v vs %+v", i, a, b)
		}
		if (a.Before == nil) != (b.Before == nil) || (a.Before != nil && !a.Before.Equal(b.Before)) {
			t.Fatalf("delta %d before mismatch", i)
		}
		if (a.After == nil) != (b.After == nil) || (a.After != nil && !a.After.Equal(b.After)) {
			t.Fatalf("delta %d after mismatch", i)
		}
	}
}

func TestDeltaEncodedSize(t *testing.T) {
	db := openDB(t, engine.Options{})
	createParts(t, db)
	tbl, _ := db.Table("parts")
	now := time.Unix(0, 0)
	row := catalog.Tuple{catalog.NewInt(1), catalog.NewString("abc"), catalog.NewInt(2), catalog.NewTime(now)}
	ins := Delta{Kind: KindInsert, After: row}
	upd := Delta{Kind: KindUpdate, Before: row, After: row}
	if upd.EncodedSize(tbl.Schema) <= ins.EncodedSize(tbl.Schema) {
		t.Fatal("update (two images) must be bigger than insert (one image)")
	}
}
