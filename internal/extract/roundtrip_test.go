package extract

import (
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/loadutil"
)

func lineSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.TypeInt64},
		catalog.Column{Name: "f", Type: catalog.TypeFloat64},
		catalog.Column{Name: "s", Type: catalog.TypeString},
		catalog.Column{Name: "b", Type: catalog.TypeBytes},
		catalog.Column{Name: "ts", Type: catalog.TypeTime},
		catalog.Column{Name: "ok", Type: catalog.TypeBool},
	)
}

func randLineString(r *rand.Rand, n int) string {
	alphabet := []rune("xyz \t\n\r\\é")
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

// randImage returns a random tuple, or nil: FormatDeltaLine renders an
// absent image as all-NULL columns, which ParseDeltaLine maps back to
// nil — so a generated image that happens to be all-NULL is normalized
// to nil before comparison.
func randImage(r *rand.Rand, s *catalog.Schema) catalog.Tuple {
	if r.Intn(4) == 0 {
		return nil
	}
	tup := make(catalog.Tuple, s.NumColumns())
	allNull := true
	for i := range tup {
		typ := s.Column(i).Type
		if r.Intn(4) == 0 {
			tup[i] = catalog.NewNull(typ)
			continue
		}
		allNull = false
		switch typ {
		case catalog.TypeInt64:
			tup[i] = catalog.NewInt(int64(r.Uint64()))
		case catalog.TypeFloat64:
			tup[i] = catalog.NewFloat(r.NormFloat64() * math.Pow(10, float64(r.Intn(30)-15)))
		case catalog.TypeString:
			tup[i] = catalog.NewString(randLineString(r, r.Intn(60)))
		case catalog.TypeBytes:
			b := make([]byte, r.Intn(60))
			r.Read(b)
			tup[i] = catalog.NewBytes(b)
		case catalog.TypeTime:
			tup[i] = catalog.NewTime(time.Unix(0, r.Int63n(4e18)))
		case catalog.TypeBool:
			tup[i] = catalog.NewBool(r.Intn(2) == 1)
		}
	}
	if allNull {
		return nil
	}
	return tup
}

func imageEq(a, b catalog.Tuple) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Equal(b)
}

func randDelta(r *rand.Rand, s *catalog.Schema) Delta {
	kinds := []Kind{KindInsert, KindDelete, KindUpdate, KindUpsert}
	return Delta{
		Kind:   kinds[r.Intn(len(kinds))],
		Table:  "parts",
		Txn:    r.Uint64(),
		Seq:    r.Uint64(),
		Before: randImage(r, s),
		After:  randImage(r, s),
	}
}

// TestDeltaLineRoundTripProperty: for any delta, ParseDeltaLine inverts
// FormatDeltaLine exactly, and the rendered line never leaks a raw
// newline, carriage return, or extra tab (the framing the differential
// file depends on).
func TestDeltaLineRoundTripProperty(t *testing.T) {
	s := lineSchema()
	r := rand.New(rand.NewSource(20260805))
	for i := 0; i < 500; i++ {
		in := randDelta(r, s)
		line := FormatDeltaLine(in, s, loadutil.FormatValue)
		if strings.ContainsAny(line, "\n\r") {
			t.Fatalf("iter %d: raw line break leaked into delta line %q", i, line)
		}
		if got, want := strings.Count(line, "\t"), 3+2*s.NumColumns(); got != want {
			t.Fatalf("iter %d: %d tabs in line, want %d", i, got, want)
		}
		out, err := ParseDeltaLine(line, s)
		if err != nil {
			t.Fatalf("iter %d: parse: %v\nline: %q", i, err, line)
		}
		if out.Kind != in.Kind || out.Table != in.Table || out.Txn != in.Txn || out.Seq != in.Seq {
			t.Fatalf("iter %d: header mismatch: %+v vs %+v", i, in, out)
		}
		if !imageEq(in.Before, out.Before) || !imageEq(in.After, out.After) {
			t.Fatalf("iter %d: image mismatch\nline: %q", i, line)
		}
	}
}

// TestDeltaLineNastyStrings pins the escaping edge cases: the NULL
// sentinel as a literal string, embedded tabs/newlines/backslashes,
// empty-vs-NULL distinction, and a max-length (64 KiB) string field.
func TestDeltaLineNastyStrings(t *testing.T) {
	s := lineSchema()
	cases := []string{
		"",
		`\N`,
		`\\N`,
		"a\tb",
		"line1\nline2",
		"\r\n",
		`back\slash`,
		"ends with tab\t",
		"\\",
		"héllo\t世界",
		strings.Repeat("x\t\\\n", 1<<14), // 64 KiB of escape-dense payload
	}
	for i, str := range cases {
		in := Delta{
			Kind: KindUpdate, Table: "parts", Txn: 7, Seq: uint64(i + 1),
			Before: catalog.Tuple{
				catalog.NewInt(int64(i)), catalog.NewNull(catalog.TypeFloat64),
				catalog.NewString(str), catalog.NewNull(catalog.TypeBytes),
				catalog.NewNull(catalog.TypeTime), catalog.NewNull(catalog.TypeBool),
			},
			After: nil,
		}
		line := FormatDeltaLine(in, s, loadutil.FormatValue)
		out, err := ParseDeltaLine(line, s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.Before == nil || out.Before[2].IsNull() || out.Before[2].Str() != str {
			t.Fatalf("case %d: string %q did not survive the round trip", i, str)
		}
		if out.After != nil {
			t.Fatalf("case %d: absent after image came back non-nil", i)
		}
	}
	// Empty string and NULL are different fields on the wire.
	empty := loadutil.FormatValue(catalog.NewString(""))
	null := loadutil.FormatValue(catalog.NewNull(catalog.TypeString))
	if empty == null {
		t.Fatalf("empty string and NULL render identically (%q)", empty)
	}
}

// TestDeltaFileRoundTrip streams random deltas (including escape-dense
// strings) through FileSink and reads them back with ReadDeltaFile.
func TestDeltaFileRoundTrip(t *testing.T) {
	s := lineSchema()
	r := rand.New(rand.NewSource(11))
	path := filepath.Join(t.TempDir(), "delta.diff")
	sink, err := NewFileSink(path, s)
	if err != nil {
		t.Fatal(err)
	}
	var ins []Delta
	for i := 0; i < 64; i++ {
		d := randDelta(r, s)
		ins = append(ins, d)
		if err := sink.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	if sink.N() != int64(len(ins)) {
		t.Fatalf("sink counted %d deltas, wrote %d", sink.N(), len(ins))
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	outs, err := ReadDeltaFile(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(ins) {
		t.Fatalf("read %d deltas, wrote %d", len(outs), len(ins))
	}
	for i := range ins {
		in, out := ins[i], outs[i]
		if out.Kind != in.Kind || out.Txn != in.Txn || out.Seq != in.Seq ||
			!imageEq(in.Before, out.Before) || !imageEq(in.After, out.After) {
			t.Fatalf("delta %d mismatch", i)
		}
	}
}
