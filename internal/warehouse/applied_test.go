package warehouse

import (
	"testing"

	"opdelta/internal/wal"
)

// TestAppliedLogExactlyOnce: with an AppliedLog, redelivering ops —
// exact replays and partially overlapping batches alike — leaves the
// warehouse byte-identical to applying the stream exactly once. This is
// the idempotence the wire protocol's at-least-once delivery rests on.
func TestAppliedLogExactlyOnce(t *testing.T) {
	ops := randomOpWorkload(t, 11, 30)
	if len(ops) < 9 {
		t.Fatalf("workload too small: %d ops", len(ops))
	}
	tables := []string{"parts", "v_low", "agg_status"}

	// Reference: plain exactly-once apply, no dedup involved.
	ref := equivWarehouse(t, wal.SyncFlush, false)
	if _, err := (&ParallelIntegrator{W: ref, Workers: 4}).Apply(ops); err != nil {
		t.Fatalf("reference apply: %v", err)
	}

	// Dedup warehouse: overlapping batches with a full replay at the end.
	w := equivWarehouse(t, wal.SyncFlush, false)
	al, err := EnsureAppliedLog(w)
	if err != nil {
		t.Fatal(err)
	}
	in := &ParallelIntegrator{W: w, Workers: 4, Applied: al}
	third := len(ops) / 3
	batches := [][]int{
		{0, 2 * third},        // first delivery
		{third, len(ops)},     // redelivery overlapping the tail
		{0, len(ops)},         // full replay (reconnect from seq 0)
		{2 * third, len(ops)}, // replay of an already-complete suffix
	}
	for i, b := range batches {
		if _, err := in.Apply(ops[b[0]:b[1]]); err != nil {
			t.Fatalf("batch %d apply: %v", i, err)
		}
	}
	for _, name := range tables {
		a, b := tableImage(t, ref.DB, name), tableImage(t, w.DB, name)
		if len(a) != len(b) {
			t.Fatalf("%s: row count %d (once) vs %d (redelivered)", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s row %d differs:\n once        %s\n redelivered %s", name, i, a[i], b[i])
			}
		}
	}
	if got := in.metrics().skippedDup.Value(); got == 0 {
		t.Fatal("no duplicate ops skipped despite overlapping redeliveries")
	}
	maxSeq, err := al.MaxSeq()
	if err != nil {
		t.Fatal(err)
	}
	if want := ops[len(ops)-1].Seq; maxSeq != want {
		t.Fatalf("MaxSeq = %d, want %d", maxSeq, want)
	}
}

// TestAppliedLogHighWatermarkGap documents why the dedup is per-op
// rather than a high-watermark: out-of-order group commits leave seq
// gaps below the max. A restart resuming from MaxSeq would lose the
// gap; the per-op Seen check recovers it.
func TestAppliedLogHighWatermarkGap(t *testing.T) {
	ops := randomOpWorkload(t, 3, 12)
	w := equivWarehouse(t, wal.SyncFlush, false)
	al, err := EnsureAppliedLog(w)
	if err != nil {
		t.Fatal(err)
	}
	in := &ParallelIntegrator{W: w, Workers: 4, Applied: al}
	// Deliver a suffix first — as if an earlier prefix group had not
	// committed when the stream cut out.
	cut := len(ops) / 2
	if _, err := in.Apply(ops[cut:]); err != nil {
		t.Fatal(err)
	}
	maxSeq, err := al.MaxSeq()
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq < ops[len(ops)-1].Seq {
		t.Fatalf("suffix apply: MaxSeq = %d", maxSeq)
	}
	// A watermark resume would now skip ops[:cut] entirely. Per-op dedup
	// applies exactly the missing prefix on the full replay.
	before := in.metrics().skippedDup.Value()
	if _, err := in.Apply(ops); err != nil {
		t.Fatal(err)
	}
	skipped := in.metrics().skippedDup.Value() - before
	if want := uint64(len(ops) - cut); skipped != want {
		t.Fatalf("full replay skipped %d ops, want exactly the already-applied %d", skipped, want)
	}
}
