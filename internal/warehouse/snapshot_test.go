package warehouse

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"opdelta/internal/wal"
)

// TestSnapshotReadsDuringParallelApply races lock-free snapshot readers
// against the parallel integrator and pins two properties: every
// concurrent snapshot renders identically to a quiesced AS OF read at
// the same commit LSN (the concurrent heap races changed nothing), and
// a snapshot at the final horizon is byte-identical to the locked scan.
// Readers must also never enter the lock manager.
func TestSnapshotReadsDuringParallelApply(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := randomOpWorkload(t, seed, 40)
			w := equivWarehouse(t, wal.SyncFlush, false)
			db := w.DB

			type obs struct {
				readLSN uint64
				image   string
			}
			var obsMu sync.Mutex
			var seen []obs
			var readerErr error
			stop := make(chan struct{})
			var wg sync.WaitGroup

			snapScan := func() (uint64, string, error) {
				stx := db.BeginSnapshot()
				defer stx.Commit()
				_, rows, err := db.Query(stx, `SELECT part_id, status, qty FROM parts`)
				if err != nil {
					return 0, "", err
				}
				lines := make([]string, 0, len(rows))
				for _, tup := range rows {
					lines = append(lines, fmt.Sprintf("%d|%s|%d", tup[0].Int(), tup[1].Str(), tup[2].Int()))
				}
				sort.Strings(lines)
				return stx.ReadLSN(), strings.Join(lines, "\n"), nil
			}

			lockGrants := func() uint64 {
				g := db.LockStats().Grants
				for _, ls := range db.LockTableStats() {
					g += ls.Acquires
				}
				return g
			}

			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						lsn, image, err := snapScan()
						obsMu.Lock()
						if err != nil {
							if readerErr == nil {
								readerErr = err
							}
							obsMu.Unlock()
							return
						}
						seen = append(seen, obs{lsn, image})
						obsMu.Unlock()
					}
				}()
			}
			if _, err := (&ParallelIntegrator{W: w, Workers: 4}).Apply(ops); err != nil {
				t.Fatalf("parallel apply: %v", err)
			}
			close(stop)
			wg.Wait()
			if readerErr != nil {
				t.Fatalf("snapshot reader: %v", readerErr)
			}
			if len(seen) == 0 {
				// The apply outran the readers; take one quiesced
				// observation so the checks below still bite.
				lsn, image, err := snapScan()
				if err != nil {
					t.Fatal(err)
				}
				seen = append(seen, obs{lsn, image})
			}

			// Property 1: concurrent snapshot == quiesced AS OF at the
			// same LSN. The version population here stays far below the GC
			// threshold, so every observed horizon is still readable.
			for _, o := range seen {
				if o.readLSN == 0 {
					// Pinned before any commit: the table must render
					// empty (AS OF requires a positive LSN).
					if o.image != "" {
						t.Fatalf("snapshot at LSN 0 saw rows:\n%s", o.image)
					}
					continue
				}
				_, rows, err := db.Query(nil, fmt.Sprintf(`SELECT part_id, status, qty FROM parts AS OF %d`, o.readLSN))
				if err != nil {
					t.Fatalf("AS OF %d: %v", o.readLSN, err)
				}
				lines := make([]string, 0, len(rows))
				for _, tup := range rows {
					lines = append(lines, fmt.Sprintf("%d|%s|%d", tup[0].Int(), tup[1].Str(), tup[2].Int()))
				}
				sort.Strings(lines)
				if got := strings.Join(lines, "\n"); got != o.image {
					t.Fatalf("snapshot at LSN %d read concurrently differs from quiesced AS OF:\n--- concurrent ---\n%s\n--- quiesced ---\n%s",
						o.readLSN, o.image, got)
				}
			}

			// Property 2: at the final horizon, snapshot == locked scan,
			// and the snapshot path grants no locks.
			before := lockGrants()
			_, finalImage, err := snapScan()
			if err != nil {
				t.Fatal(err)
			}
			if after := lockGrants(); after != before {
				t.Fatalf("snapshot scan acquired %d locks, want 0", after-before)
			}
			_, lockedRows, err := db.Query(nil, `SELECT part_id, status, qty FROM parts`)
			if err != nil {
				t.Fatal(err)
			}
			lines := make([]string, 0, len(lockedRows))
			for _, tup := range lockedRows {
				lines = append(lines, fmt.Sprintf("%d|%s|%d", tup[0].Int(), tup[1].Str(), tup[2].Int()))
			}
			sort.Strings(lines)
			if got := strings.Join(lines, "\n"); got != finalImage {
				t.Fatalf("final snapshot != locked scan:\n--- snapshot ---\n%s\n--- locked ---\n%s", finalImage, got)
			}
		})
	}
}
