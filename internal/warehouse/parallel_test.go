package warehouse

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/opdelta"
	"opdelta/internal/sqlmini"
	"opdelta/internal/wal"
)

// equivseeds bounds the randomized serial-vs-parallel equivalence
// sweep. CI runs a larger bound: go test ./internal/warehouse/ -equivseeds 12
var equivseeds = flag.Int("equivseeds", 4, "seeds for the parallel apply equivalence sweep")

// fixedNow pins engine-stamped timestamp columns: serial and parallel
// replays execute statements in different global orders, so a ticking
// clock would make byte comparison fail for reasons that have nothing
// to do with integration correctness.
func fixedNow() time.Time { return time.Date(2000, 3, 1, 0, 0, 0, 0, time.UTC) }

// equivWarehouse builds a warehouse (replica + SP view + aggregate
// view, plus optionally a PK-dropping view) over a fixed clock.
func equivWarehouse(t *testing.T, sync wal.SyncPolicy, withNoPKView bool) *Warehouse {
	t.Helper()
	db, err := engine.Open(t.TempDir(), engine.Options{Now: fixedNow, WALSync: sync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(nil, partsDDL); err != nil {
		t.Fatal(err)
	}
	w := New(db)
	schema := partsSchema(t, db)
	if err := w.RegisterReplica("parts", schema, "part_id", "last_modified"); err != nil {
		t.Fatal(err)
	}
	lowQty, err := sqlmini.ParseExpr("qty < 500")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterView(opdelta.ViewDef{
		Name: "v_low", Source: "parts", Project: []string{"part_id", "qty"}, Where: lowQty,
	}, schema, nil); err != nil {
		t.Fatal(err)
	}
	if withNoPKView {
		// v_status drops the PK: full-row-match deletes make its
		// maintenance order-sensitive, so its presence must force the
		// integrator into whole-table conflicts (serial order).
		if _, err := w.RegisterView(opdelta.ViewDef{
			Name: "v_status", Source: "parts", Project: []string{"status"},
		}, schema, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.RegisterAggView(AggViewDef{
		Name: "agg_status", Source: "parts", GroupBy: "status",
		Aggregates: []sqlmini.AggSpec{
			{Fn: sqlmini.AggCount},
			{Fn: sqlmini.AggSum, Col: "qty"},
		},
	}, schema); err != nil {
		t.Fatal(err)
	}
	return w
}

// randomOpWorkload executes a seeded random transaction mix on a fresh
// source with op capture and returns the captured stream.
func randomOpWorkload(t *testing.T, seed int64, txns int) []*opdelta.Op {
	t.Helper()
	src, _, oc, log := sourceWithCapture(t, nil)
	rng := rand.New(rand.NewSource(seed))
	const keys = 400
	live := make(map[int64]bool)
	// Seed rows so updates and deletes have targets.
	tx := src.Begin()
	for k := int64(0); k < 120; k++ {
		stmt := fmt.Sprintf("INSERT INTO parts VALUES (%d, 's%d', %d, NULL)", k, k%7, k*10)
		if _, err := oc.Exec(tx, stmt); err != nil {
			t.Fatal(err)
		}
		live[k] = true
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < txns; i++ {
		tx := src.Begin()
		for s := 0; s < 1+rng.Intn(4); s++ {
			var stmt string
			switch rng.Intn(10) {
			case 0, 1: // insert a fresh key
				k := int64(rng.Intn(keys))
				for live[k] {
					k = (k + 1) % keys
				}
				live[k] = true
				stmt = fmt.Sprintf("INSERT INTO parts (part_id, status, qty) VALUES (%d, 's%d', %d)", k, rng.Intn(7), rng.Intn(1000))
			case 2: // delete a point
				k := int64(rng.Intn(keys))
				delete(live, k)
				stmt = fmt.Sprintf("DELETE FROM parts WHERE part_id = %d", k)
			case 3, 4, 5: // range update (analyzable footprint)
				lo := rng.Intn(keys)
				hi := lo + rng.Intn(25)
				stmt = fmt.Sprintf("UPDATE parts SET status = 's%d', qty = %d WHERE part_id BETWEEN %d AND %d",
					rng.Intn(7), rng.Intn(1000), lo, hi)
			case 6, 7, 8: // point update with computed non-key column
				stmt = fmt.Sprintf("UPDATE parts SET qty = qty + %d WHERE part_id = %d", 1+rng.Intn(9), rng.Intn(keys))
			default: // non-key predicate: degrades to whole-table (serial fallback)
				stmt = fmt.Sprintf("UPDATE parts SET status = 'w%d' WHERE qty = %d", rng.Intn(3), rng.Intn(1000))
			}
			if _, err := oc.Exec(tx, stmt); err != nil {
				t.Fatalf("workload stmt %q: %v", stmt, err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	ops, err := log.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

// tableImage renders a table as sorted encoded rows, a physical-layout-
// independent fingerprint of its logical content.
func tableImage(t *testing.T, db *engine.DB, name string) []string {
	t.Helper()
	var rows []string
	err := db.ScanTable(nil, name, func(tup catalog.Tuple) error {
		parts := make([]string, len(tup))
		for i, v := range tup {
			parts[i] = v.SQLLiteral()
		}
		rows = append(rows, strings.Join(parts, "|"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

// TestParallelApplyEquivalence is the property test: for seeded random
// workloads, ParallelIntegrator at 4 workers must leave the warehouse —
// base replica and every view — byte-identical to the serial
// OpDeltaIntegrator. Each seed runs under both lock plans: key-range
// locking (appliers overlap execution) and the whole-table baseline.
func TestParallelApplyEquivalence(t *testing.T) {
	for seed := int64(1); seed <= int64(*equivseeds); seed++ {
		seed := seed
		// Every other seed adds the PK-dropping view, which forces the
		// whole-table (serial-order) degradation path; the rest exercise
		// genuine reordering.
		withNoPK := seed%2 == 0
		for _, tableLocks := range []bool{false, true} {
			tableLocks := tableLocks
			mode := "rangelocks"
			if tableLocks {
				mode = "tablelocks"
			}
			t.Run(fmt.Sprintf("seed%d/%s", seed, mode), func(t *testing.T) {
				tables := []string{"parts", "v_low", "agg_status"}
				if withNoPK {
					tables = append(tables, "v_status")
				}
				ops := randomOpWorkload(t, seed, 40)
				ws := equivWarehouse(t, wal.SyncFlush, withNoPK)
				serStats, err := (&OpDeltaIntegrator{W: ws, GroupByTxn: true}).Apply(ops)
				if err != nil {
					t.Fatalf("serial apply: %v", err)
				}
				wp := equivWarehouse(t, wal.SyncFlush, withNoPK)
				parStats, err := (&ParallelIntegrator{W: wp, Workers: 4, TableLocks: tableLocks}).Apply(ops)
				if err != nil {
					t.Fatalf("parallel apply: %v", err)
				}
				if serStats.Records != parStats.Records || serStats.Txns != parStats.Txns {
					t.Fatalf("stats diverged: serial %+v parallel %+v", serStats, parStats)
				}
				for _, name := range tables {
					a, b := tableImage(t, ws.DB, name), tableImage(t, wp.DB, name)
					if len(a) != len(b) {
						t.Fatalf("%s: row count %d (serial) vs %d (parallel)", name, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("%s row %d differs:\n serial   %s\n parallel %s", name, i, a[i], b[i])
						}
					}
				}
			})
		}
	}
}

// TestParallelApplyOrderedConflicts pins the DAG ordering guarantee
// directly: many transactions rewriting the same key must land in
// source commit order even with maximal worker counts.
func TestParallelApplyOrderedConflicts(t *testing.T) {
	src, _, oc, log := sourceWithCapture(t, nil)
	tx := src.Begin()
	if _, err := oc.Exec(tx, "INSERT INTO parts VALUES (1, 'v0', 0, NULL)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	const chain = 30
	for i := 1; i <= chain; i++ {
		tx := src.Begin()
		if _, err := oc.Exec(tx, fmt.Sprintf("UPDATE parts SET status = 'v%d', qty = %d WHERE part_id = 1", i, i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	ops, err := log.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	w := equivWarehouse(t, wal.SyncFlush, false)
	if _, err := (&ParallelIntegrator{W: w, Workers: 8}).Apply(ops); err != nil {
		t.Fatal(err)
	}
	_, rows, err := w.DB.Query(nil, "SELECT status, qty FROM parts WHERE part_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Str() != fmt.Sprintf("v%d", chain) {
		t.Fatalf("conflicting chain applied out of order: %v", rows)
	}
}
