package warehouse

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"opdelta/internal/extract"
	"opdelta/internal/opdelta"
	"opdelta/internal/sqlmini"
)

func aggViewFixture(t *testing.T) (*Warehouse, *AggView) {
	t.Helper()
	src := openDB(t)
	if _, err := src.Exec(nil, partsDDL); err != nil {
		t.Fatal(err)
	}
	schema := partsSchema(t, src)
	w := replicaWarehouse(t, schema)
	v, err := w.RegisterAggView(AggViewDef{
		Name: "qty_by_status", Source: "parts", GroupBy: "status",
		Aggregates: []sqlmini.AggSpec{
			{Fn: sqlmini.AggCount},
			{Fn: sqlmini.AggSum, Col: "qty"},
		},
	}, schema)
	if err != nil {
		t.Fatal(err)
	}
	return w, v
}

func TestAggViewIncrementalMaintenance(t *testing.T) {
	w, _ := aggViewFixture(t)
	in := &OpDeltaIntegrator{W: w}
	apply := func(kind opdelta.OpKind, stmt string) {
		t.Helper()
		if _, err := in.Apply([]*opdelta.Op{{Seq: 1, Kind: kind, Table: "parts", Stmt: stmt}}); err != nil {
			t.Fatal(err)
		}
	}
	apply(opdelta.OpInsert, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 10), (2, 'a', 20), (3, 'b', 30)`)
	_, rows, err := w.DB.Query(nil, `SELECT * FROM qty_by_status ORDER BY status`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	// status, n_rows, count, sum_qty
	if rows[0][0].Str() != "a" || rows[0][1].Int() != 2 || rows[0][2].Int() != 2 || rows[0][3].Int() != 30 {
		t.Fatalf("group a = %v", rows[0])
	}
	if rows[1][0].Str() != "b" || rows[1][3].Int() != 30 {
		t.Fatalf("group b = %v", rows[1])
	}

	// Update moves a row between groups.
	apply(opdelta.OpUpdate, `UPDATE parts SET status = 'b' WHERE part_id = 1`)
	_, rows, _ = w.DB.Query(nil, `SELECT * FROM qty_by_status ORDER BY status`)
	if rows[0][1].Int() != 1 || rows[0][3].Int() != 20 { // a: one row, qty 20
		t.Fatalf("group a after move = %v", rows[0])
	}
	if rows[1][1].Int() != 2 || rows[1][3].Int() != 40 { // b: rows 1,3
		t.Fatalf("group b after move = %v", rows[1])
	}

	// Deleting the last row of a group removes the group.
	apply(opdelta.OpDelete, `DELETE FROM parts WHERE part_id = 2`)
	_, rows, _ = w.DB.Query(nil, `SELECT * FROM qty_by_status`)
	if len(rows) != 1 || rows[0][0].Str() != "b" {
		t.Fatalf("groups after emptying a = %v", rows)
	}
	// Value updates adjust sums in place.
	apply(opdelta.OpUpdate, `UPDATE parts SET qty = qty + 5 WHERE part_id = 3`)
	_, rows, _ = w.DB.Query(nil, `SELECT sum_qty FROM qty_by_status`)
	if rows[0][0].Int() != 45 { // rows 1 (qty 10) and 3 (qty 30+5)
		t.Fatalf("sum after qty bump = %v", rows[0])
	}
}

func TestAggViewRejectsMinMax(t *testing.T) {
	src := openDB(t)
	src.Exec(nil, partsDDL)
	schema := partsSchema(t, src)
	w := replicaWarehouse(t, schema)
	_, err := w.RegisterAggView(AggViewDef{
		Name: "bad", Source: "parts",
		Aggregates: []sqlmini.AggSpec{{Fn: sqlmini.AggMin, Col: "qty"}},
	}, schema)
	if err == nil {
		t.Fatal("MIN must be rejected (not incrementally maintainable)")
	}
	if _, err := w.RegisterAggView(AggViewDef{Name: "bad2", Source: "parts",
		Aggregates: []sqlmini.AggSpec{{Fn: sqlmini.AggSum, Col: "status"}}}, schema); err == nil {
		t.Fatal("SUM over strings must be rejected")
	}
	if _, err := w.RegisterAggView(AggViewDef{Name: "bad3", Source: "ghost",
		Aggregates: []sqlmini.AggSpec{{Fn: sqlmini.AggCount}}}, schema); err == nil {
		t.Fatal("aggregate view without a replica must be rejected")
	}
}

func TestAggViewUngroupedWithSelection(t *testing.T) {
	src := openDB(t)
	src.Exec(nil, partsDDL)
	schema := partsSchema(t, src)
	w := replicaWarehouse(t, schema)
	where, _ := sqlmini.ParseExpr(`qty >= 10`)
	if _, err := w.RegisterAggView(AggViewDef{
		Name: "big_parts_total", Source: "parts", Where: where,
		Aggregates: []sqlmini.AggSpec{{Fn: sqlmini.AggCount}, {Fn: sqlmini.AggSum, Col: "qty"}},
	}, schema); err != nil {
		t.Fatal(err)
	}
	in := &OpDeltaIntegrator{W: w}
	in.Apply([]*opdelta.Op{{Seq: 1, Kind: opdelta.OpInsert, Table: "parts",
		Stmt: `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 5), (2, 'a', 15), (3, 'a', 25)`}})
	_, rows, err := w.DB.Query(nil, `SELECT * FROM big_parts_total`)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	// qty 5 filtered out: n_rows=2, count=2, sum=40.
	if rows[0][0].Int() != 2 || rows[0][2].Int() != 40 {
		t.Fatalf("row = %v", rows[0])
	}
	// Row leaving the selection via update.
	in.Apply([]*opdelta.Op{{Seq: 2, Kind: opdelta.OpUpdate, Table: "parts",
		Stmt: `UPDATE parts SET qty = 1 WHERE part_id = 2`}})
	_, rows, _ = w.DB.Query(nil, `SELECT * FROM big_parts_total`)
	if rows[0][0].Int() != 1 || rows[0][2].Int() != 25 {
		t.Fatalf("after leave = %v", rows[0])
	}
}

// TestQuickAggViewMatchesRecompute: under random change streams, the
// incrementally maintained aggregate view must always equal a full
// recomputation over the replica.
func TestQuickAggViewMatchesRecompute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, _ := aggViewFixture(t)
		in := &OpDeltaIntegrator{W: w}
		nextID := int64(0)
		for step := 0; step < 25; step++ {
			var stmt string
			kind := opdelta.OpInsert
			switch r.Intn(3) {
			case 0:
				stmt = fmt.Sprintf(`INSERT INTO parts (part_id, status, qty) VALUES (%d, 's%d', %d)`,
					nextID, r.Intn(3), r.Int63n(50))
				nextID++
			case 1:
				if nextID == 0 {
					continue
				}
				kind = opdelta.OpUpdate
				stmt = fmt.Sprintf(`UPDATE parts SET status = 's%d', qty = qty + %d WHERE part_id BETWEEN %d AND %d`,
					r.Intn(3), r.Int63n(7), r.Int63n(nextID), r.Int63n(nextID))
			case 2:
				if nextID == 0 {
					continue
				}
				kind = opdelta.OpDelete
				lo := r.Int63n(nextID)
				stmt = fmt.Sprintf(`DELETE FROM parts WHERE part_id BETWEEN %d AND %d`, lo, lo+r.Int63n(3))
			}
			if _, err := in.Apply([]*opdelta.Op{{Seq: uint64(step + 1), Kind: kind, Table: "parts", Stmt: stmt}}); err != nil {
				return false
			}
		}
		// Recompute from the replica with the engine's own aggregates.
		_, want, err := w.DB.Query(nil, `SELECT status, COUNT(*), SUM(qty) FROM parts GROUP BY status`)
		if err != nil {
			return false
		}
		_, got, err := w.DB.Query(nil, `SELECT status, n_rows, sum_qty FROM qty_by_status ORDER BY status`)
		if err != nil {
			return false
		}
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i][0].Str() != got[i][0].Str() ||
				want[i][1].Int() != got[i][1].Int() ||
				want[i][2].Int() != got[i][2].Int() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestAggViewWorksWithValueDeltas: both integrators drive the same view
// maintenance through the replica triggers.
func TestAggViewWorksWithValueDeltas(t *testing.T) {
	src, vc, _, _ := sourceWithCapture(t, nil)
	schema := partsSchema(t, src)
	w := replicaWarehouse(t, schema)
	if _, err := w.RegisterAggView(AggViewDef{
		Name: "totals", Source: "parts",
		Aggregates: []sqlmini.AggSpec{{Fn: sqlmini.AggCount}, {Fn: sqlmini.AggSum, Col: "qty"}},
	}, schema); err != nil {
		t.Fatal(err)
	}
	src.Exec(nil, `INSERT INTO parts (part_id, qty) VALUES (1, 10), (2, 20)`)
	src.Exec(nil, `DELETE FROM parts WHERE part_id = 1`)
	var sink extract.CollectSink
	vc.Extract(&sink)
	if _, err := (&ValueDeltaIntegrator{W: w}).Apply(sink.Deltas); err != nil {
		t.Fatal(err)
	}
	_, rows, err := w.DB.Query(nil, `SELECT n_rows, sum_qty FROM totals`)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	if rows[0][0].Int() != 1 || rows[0][1].Int() != 20 {
		t.Fatalf("totals = %v", rows[0])
	}
}
