package warehouse

import (
	"testing"

	"opdelta/internal/obs"
	"opdelta/internal/wal"
)

// TestParallelApplyTraceMonotone runs a captured workload through the
// lifecycle tracer end to end in-process: the test plays the transport
// role (Begin + Enqueued + Dequeued), the parallel integrator stamps
// lock/apply/durable and completes each trace, and every completed
// record must be monotone in pipeline order with freshness covering
// the full capture->durable span. The parallel appliers stamp traces
// from several goroutines, so the race detector covers the tracer's
// hot path here too.
func TestParallelApplyTraceMonotone(t *testing.T) {
	w := equivWarehouse(t, wal.SyncFull, false)
	ops := randomOpWorkload(t, 7, 30)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, len(ops)+1)
	for _, op := range ops {
		tr := tracer.Begin(op.Seq, op.Txn, op.Time)
		tr.Enqueued()
		tr.Dequeued()
		op.Trace = tr
	}
	in := &ParallelIntegrator{W: w, Workers: 4}
	if _, err := in.Apply(ops); err != nil {
		t.Fatal(err)
	}

	recs := tracer.Recent(0)
	if len(recs) != len(ops) {
		t.Fatalf("completed traces = %d, want %d", len(recs), len(ops))
	}
	for _, r := range recs {
		stamps := []struct {
			name string
			ns   int64
		}{
			{"captured", r.Captured},
			{"enqueued", r.Enqueued},
			{"dequeued", r.Dequeued},
			{"locked", r.Locked},
			{"applied", r.Applied},
			{"durable", r.Durable},
		}
		prev := stamps[0]
		for _, s := range stamps[1:] {
			if s.ns == 0 {
				t.Fatalf("trace seq=%d missing %s stamp", r.Seq, s.name)
			}
			if s.ns < prev.ns {
				t.Errorf("trace seq=%d: %s (%d) precedes %s (%d)", r.Seq, s.name, s.ns, prev.name, prev.ns)
			}
			prev = s
		}
		if want := r.Durable - r.Captured; r.FreshnessNs != want {
			t.Errorf("trace seq=%d freshness = %d, want %d", r.Seq, r.FreshnessNs, want)
		}
		if r.FreshnessNs <= 0 {
			t.Errorf("trace seq=%d freshness = %d, want > 0", r.Seq, r.FreshnessNs)
		}
	}

	snap := reg.Snapshot()
	if m := snap.Get("delta_freshness_lag_seconds"); m == nil || m.Count != uint64(len(ops)) {
		t.Fatalf("freshness histogram count = %+v, want %d observations", m, len(ops))
	}
	for _, stage := range []string{"lock", "apply", "durable"} {
		m := snap.Get("delta_stage_seconds", obs.L("stage", stage))
		if m == nil || m.Count != uint64(len(ops)) {
			t.Fatalf("stage %q histogram = %+v, want %d observations", stage, m, len(ops))
		}
	}
}
