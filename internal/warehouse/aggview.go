package warehouse

import (
	"fmt"
	"strings"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/sqlmini"
)

// AggViewDef describes an incrementally-maintained aggregate view —
// the summary-table shape that Labio et al. [19] (cited in the paper's
// introduction) maintain at warehouses. The view groups the source
// table by one optional column and folds COUNT/SUM/AVG aggregates.
//
// MIN and MAX are rejected: they are not self-maintainable under
// deletes (removing the current extremum requires rescanning the
// group), so an incremental maintainer cannot support them without
// auxiliary state.
type AggViewDef struct {
	Name       string
	Source     string
	GroupBy    string // optional grouping column
	Aggregates []sqlmini.AggSpec
	Where      sqlmini.Expr // selection over source rows
}

// AggView is one registered aggregate view.
type AggView struct {
	Def       AggViewDef
	SrcSchema *catalog.Schema
	Schema    *catalog.Schema
	groupIdx  int   // source column index of GroupBy, -1 if none
	aggCols   []int // source column index per aggregate, -1 for COUNT(*)
}

// aggViewSchema lays the view out as: [group col], n_rows BIGINT
// (maintenance bookkeeping: live rows per group), then one column per
// aggregate. AVG is stored as its SUM; the companion count divides it
// at query time via the AvgQuery helper.
func aggViewSchema(def AggViewDef, src *catalog.Schema) (*catalog.Schema, []int, int, error) {
	var cols []catalog.Column
	groupIdx := -1
	if def.GroupBy != "" {
		i, ok := src.ColIndex(def.GroupBy)
		if !ok {
			return nil, nil, 0, fmt.Errorf("warehouse: no column %q in %s", def.GroupBy, def.Source)
		}
		groupIdx = i
		cols = append(cols, src.Column(i))
	}
	cols = append(cols, catalog.Column{Name: "n_rows", Type: catalog.TypeInt64, NotNull: true})
	var aggCols []int
	for _, spec := range def.Aggregates {
		switch spec.Fn {
		case sqlmini.AggCount:
			idx := -1
			if spec.Col != "" {
				i, ok := src.ColIndex(spec.Col)
				if !ok {
					return nil, nil, 0, fmt.Errorf("warehouse: no column %q in %s", spec.Col, def.Source)
				}
				idx = i
			}
			aggCols = append(aggCols, idx)
			cols = append(cols, catalog.Column{Name: aggColName(spec), Type: catalog.TypeInt64, NotNull: true})
		case sqlmini.AggSum, sqlmini.AggAvg:
			i, ok := src.ColIndex(spec.Col)
			if !ok {
				return nil, nil, 0, fmt.Errorf("warehouse: no column %q in %s", spec.Col, def.Source)
			}
			typ := src.Column(i).Type
			if typ != catalog.TypeInt64 && typ != catalog.TypeFloat64 {
				return nil, nil, 0, fmt.Errorf("warehouse: %s over non-numeric column %q", spec.Fn, spec.Col)
			}
			outType := typ
			if spec.Fn == sqlmini.AggAvg {
				outType = catalog.TypeFloat64
			}
			aggCols = append(aggCols, i)
			cols = append(cols, catalog.Column{Name: aggColName(spec), Type: outType, NotNull: true})
		case sqlmini.AggMin, sqlmini.AggMax:
			return nil, nil, 0, fmt.Errorf(
				"warehouse: %s is not incrementally maintainable under deletes", spec.Fn)
		default:
			return nil, nil, 0, fmt.Errorf("warehouse: unknown aggregate %v", spec.Fn)
		}
	}
	return catalog.NewSchema(cols...), aggCols, groupIdx, nil
}

func aggColName(spec sqlmini.AggSpec) string {
	name := strings.ToLower(spec.Fn.String())
	if spec.Col != "" {
		name += "_" + strings.ToLower(spec.Col)
	}
	return name
}

// RegisterAggView materializes an aggregate view over a replica table
// (the replica provides the full images incremental folding needs).
// The view starts empty and fills as changes arrive; register it before
// loading data, or reload the replica afterwards.
func (w *Warehouse) RegisterAggView(def AggViewDef, srcSchema *catalog.Schema) (*AggView, error) {
	if def.Name == "" || def.Source == "" || len(def.Aggregates) == 0 {
		return nil, fmt.Errorf("warehouse: aggregate view needs Name, Source and Aggregates")
	}
	if !w.HasReplica(def.Source) {
		return nil, fmt.Errorf("warehouse: aggregate view %s requires a replica of %s", def.Name, def.Source)
	}
	schema, aggCols, groupIdx, err := aggViewSchema(def, srcSchema)
	if err != nil {
		return nil, err
	}
	v := &AggView{Def: def, SrcSchema: srcSchema, Schema: schema, groupIdx: groupIdx, aggCols: aggCols}
	pk := ""
	if groupIdx >= 0 {
		pk = srcSchema.Column(groupIdx).Name
	}
	if _, err := w.DB.CreateTable(engine.TableDef{Name: def.Name, Schema: schema, PrimaryKey: pk}); err != nil {
		return nil, err
	}
	trig := engine.Trigger{
		Name: "aggview_" + def.Name, OnInsert: true, OnDelete: true, OnUpdate: true,
		Fn: func(tx *engine.Tx, ev engine.TriggerEvent) error {
			switch ev.Op {
			case engine.TrigInsert:
				return w.aggFold(tx, v, ev.After, +1)
			case engine.TrigDelete:
				return w.aggFold(tx, v, ev.Before, -1)
			case engine.TrigUpdate:
				if err := w.aggFold(tx, v, ev.Before, -1); err != nil {
					return err
				}
				return w.aggFold(tx, v, ev.After, +1)
			}
			return nil
		},
	}
	if err := w.DB.CreateTrigger(def.Source, trig); err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.aggs[strings.ToLower(def.Source)] = append(w.aggs[strings.ToLower(def.Source)], v)
	w.mu.Unlock()
	return v, nil
}

// aggFold applies one source row to the view with the given sign.
func (w *Warehouse) aggFold(tx *engine.Tx, v *AggView, row catalog.Tuple, sign int64) error {
	if v.Def.Where != nil {
		ok, err := sqlmini.EvalPredicate(v.Def.Where, v.SrcSchema, row)
		if err != nil || !ok {
			return err
		}
	}
	// Locate the group row.
	var keyVal catalog.Value
	var where sqlmini.Expr
	if v.groupIdx >= 0 {
		keyVal = row[v.groupIdx]
		keyName := v.Schema.Column(0).Name
		if keyVal.IsNull() {
			where = &sqlmini.IsNull{Expr: &sqlmini.ColRef{Name: keyName}}
		} else {
			where = &sqlmini.Binary{Op: sqlmini.OpEq,
				L: &sqlmini.ColRef{Name: keyName}, R: &sqlmini.Literal{Val: keyVal}}
		}
	}
	var current catalog.Tuple
	if _, err := w.DB.IterateSelect(tx, &sqlmini.Select{Table: v.Def.Name, Where: where},
		func(t catalog.Tuple) error {
			current = t
			return nil
		}); err != nil {
		return err
	}
	base := 0
	if v.groupIdx >= 0 {
		base = 1
	}
	if current == nil {
		if sign < 0 {
			return fmt.Errorf("warehouse: aggregate view %s: delete for missing group (view registered after data load?)", v.Def.Name)
		}
		current = make(catalog.Tuple, v.Schema.NumColumns())
		if v.groupIdx >= 0 {
			current[0] = keyVal
		}
		current[base] = catalog.NewInt(0)
		for i := range v.aggCols {
			typ := v.Schema.Column(base + 1 + i).Type
			if typ == catalog.TypeInt64 {
				current[base+1+i] = catalog.NewInt(0)
			} else {
				current[base+1+i] = catalog.NewFloat(0)
			}
		}
		// Fall through to fold then insert.
		next, err := v.foldInto(current, row, sign, base)
		if err != nil {
			return err
		}
		return w.DB.InsertTuple(tx, v.Def.Name, next)
	}
	next, err := v.foldInto(current.Clone(), row, sign, base)
	if err != nil {
		return err
	}
	if next[base].Int() == 0 {
		// Group emptied: remove its row.
		_, err := w.DB.ExecStmt(tx, &sqlmini.Delete{Table: v.Def.Name, Where: where})
		return err
	}
	// Rewrite the group row: delete + insert keeps this simple and
	// correct under the table's PK.
	if _, err := w.DB.ExecStmt(tx, &sqlmini.Delete{Table: v.Def.Name, Where: where}); err != nil {
		return err
	}
	return w.DB.InsertTuple(tx, v.Def.Name, next)
}

// foldInto applies one signed row to the materialized accumulators.
func (v *AggView) foldInto(acc catalog.Tuple, row catalog.Tuple, sign int64, base int) (catalog.Tuple, error) {
	acc[base] = catalog.NewInt(acc[base].Int() + sign)
	for i, spec := range v.Def.Aggregates {
		pos := base + 1 + i
		src := v.aggCols[i]
		switch spec.Fn {
		case sqlmini.AggCount:
			if src < 0 || !row[src].IsNull() {
				acc[pos] = catalog.NewInt(acc[pos].Int() + sign)
			}
		case sqlmini.AggSum, sqlmini.AggAvg:
			if row[src].IsNull() {
				continue
			}
			switch acc[pos].Type() {
			case catalog.TypeInt64:
				acc[pos] = catalog.NewInt(acc[pos].Int() + sign*row[src].Int())
			case catalog.TypeFloat64:
				val := 0.0
				if row[src].Type() == catalog.TypeInt64 {
					val = float64(row[src].Int())
				} else {
					val = row[src].Float()
				}
				acc[pos] = catalog.NewFloat(acc[pos].Float() + float64(sign)*val)
			}
		}
	}
	return acc, nil
}

// AvgOf computes the average for an AVG aggregate from a view row (the
// stored value is the running sum; n_rows... no: AVG divides by the
// aggregate's own non-NULL count, which for simplicity this view tracks
// as COUNT of the same column when present, else n_rows).
//
// For exact NULL-aware averages, define the view with an explicit
// COUNT(col) next to AVG(col) and divide; AvgOf uses n_rows, which is
// exact when the column has no NULLs.
func (v *AggView) AvgOf(row catalog.Tuple, aggIndex int) float64 {
	base := 0
	if v.groupIdx >= 0 {
		base = 1
	}
	n := row[base].Int()
	if n == 0 {
		return 0
	}
	sum := row[base+1+aggIndex]
	if sum.Type() == catalog.TypeInt64 {
		return float64(sum.Int()) / float64(n)
	}
	return sum.Float() / float64(n)
}
