package warehouse

import (
	"opdelta/internal/obs"
)

// applyMetrics are one integrator's registry series, labelled by
// integrator kind so value-delta batches, serial op replay, and
// parallel op replay are distinguishable on the same warehouse
// registry. The registry is the warehouse engine's (DB.Obs()), so each
// engine instance — and thus each bench run's fresh warehouse — keeps
// its own counters.
type applyMetrics struct {
	txns       *obs.Counter
	records    *obs.Counter
	statements *obs.Counter
	// txnSeconds observes each warehouse transaction begin→commit,
	// lock pre-declaration included: the slice of the maintenance
	// window one source transaction costs.
	txnSeconds *obs.Histogram

	// skippedDup counts ops recognized as already applied (at-least-once
	// redelivery) and skipped by the AppliedLog dedup.
	skippedDup *obs.Counter

	// Degradation events: the scheduler giving up precision.
	// degradedUniversal counts groups that fell back to
	// conflicts-with-everything (unparseable op / unbounded key set);
	// degradedWholeTable counts table lock plans widened from key
	// ranges to a whole-table lock (join views, agg views, PK-dropping
	// views, fallback analysis).
	degradedUniversal  *obs.Counter
	degradedWholeTable *obs.Counter
}

func newApplyMetrics(reg *obs.Registry, integrator string) *applyMetrics {
	l := obs.L("integrator", integrator)
	return &applyMetrics{
		txns:               reg.Counter("warehouse_apply_txns_total", l),
		records:            reg.Counter("warehouse_apply_records_total", l),
		statements:         reg.Counter("warehouse_apply_statements_total", l),
		txnSeconds:         reg.Histogram("warehouse_apply_txn_seconds", obs.DurationBuckets, l),
		skippedDup:         reg.Counter("warehouse_apply_skipped_duplicate_total", l),
		degradedUniversal:  reg.Counter("warehouse_degraded_universal_total", l),
		degradedWholeTable: reg.Counter("warehouse_degraded_whole_table_total", l),
	}
}
