package warehouse

import (
	"fmt"
	"sort"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/sqlmini"
)

// BootstrapLogName is the warehouse table recording snapshot-bootstrap
// progress, next to the AppliedLog.
const BootstrapLogName = "opdelta__bootstrap"

// metaRow keys the run-level row of the bootstrap log. The NUL prefix
// keeps it out of any real table namespace.
const metaRow = "\x00run"

// BootstrapLog makes snapshot bootstrap resumable: one row per
// bootstrapped table (last applied chunk boundary, or done) plus a meta
// row for the run (the source log base it covers, and whether the run
// finished). Rows are written in the same transaction as the chunk's
// rows, so a killed replica resumes exactly after its last durable
// chunk instead of restarting the snapshot.
type BootstrapLog struct {
	W *Warehouse
}

// Progress is one table's durable bootstrap position.
type Progress struct {
	Table string
	Done  bool
	// LastKey is the encoded PK the next chunk resumes after; nil means
	// the table has not produced a durable chunk yet.
	LastKey []byte
}

// Meta is the run-level bootstrap state.
type Meta struct {
	Exists bool
	Done   bool
	// Base is the source log truncation base the run was started
	// against; a HELLO advertising a different base invalidates the run.
	Base uint64
}

func bootstrapLogSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "b_table", Type: catalog.TypeString, NotNull: true},
		catalog.Column{Name: "b_state", Type: catalog.TypeInt64, NotNull: true},
		catalog.Column{Name: "b_key", Type: catalog.TypeBytes},
		catalog.Column{Name: "b_base", Type: catalog.TypeInt64, NotNull: true},
	)
}

// EnsureBootstrapLog creates (if needed) the bootstrap-progress table
// and returns the log.
func EnsureBootstrapLog(w *Warehouse) (*BootstrapLog, error) {
	if _, err := w.DB.Table(BootstrapLogName); err != nil {
		if _, err := w.DB.CreateTable(engine.TableDef{
			Name: BootstrapLogName, Schema: bootstrapLogSchema(), PrimaryKey: "b_table",
		}); err != nil {
			return nil, err
		}
	}
	return &BootstrapLog{W: w}, nil
}

// Meta reads the run-level row.
func (b *BootstrapLog) Meta() (Meta, error) {
	var m Meta
	err := b.W.DB.ScanTable(nil, BootstrapLogName, func(row catalog.Tuple) error {
		if row[0].Str() != metaRow {
			return nil
		}
		m.Exists = true
		m.Done = row[1].Int() == 1
		m.Base = uint64(row[3].Int())
		return nil
	})
	return m, err
}

// Progress reads the per-table rows, sorted by table name.
func (b *BootstrapLog) Progress() ([]Progress, error) {
	var out []Progress
	err := b.W.DB.ScanTable(nil, BootstrapLogName, func(row catalog.Tuple) error {
		if row[0].Str() == metaRow {
			return nil
		}
		p := Progress{Table: row[0].Str(), Done: row[1].Int() == 1}
		if !row[2].IsNull() {
			if k := row[2].BytesVal(); len(k) > 0 {
				p.LastKey = append([]byte(nil), k...)
			}
		}
		out = append(out, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out, nil
}

// StartRun resets the log for a fresh bootstrap against the given
// source base: all prior rows are deleted and a new not-done meta row
// written, in one transaction. Per-table rows appear as chunks land.
func (b *BootstrapLog) StartRun(base uint64) error {
	tx := b.W.DB.Begin()
	defer tx.Abort()
	if err := tx.LockTablesExclusive(BootstrapLogName); err != nil {
		return err
	}
	if _, err := b.W.DB.ExecStmt(tx, &sqlmini.Delete{Table: BootstrapLogName}); err != nil {
		return err
	}
	row := catalog.Tuple{
		catalog.NewString(metaRow), catalog.NewInt(0),
		catalog.NewNull(catalog.TypeBytes), catalog.NewInt(int64(base)),
	}
	if err := b.W.DB.InsertTuple(tx, BootstrapLogName, row); err != nil {
		return err
	}
	return tx.Commit()
}

// ApplyChunk lands one reconciled chunk atomically: the surviving rows
// upserted into table, the table's progress row advanced (lastKey, or
// done), and — when this was the run's last chunk — the meta row marked
// done, all in one transaction. If the table has no progress row yet
// (first chunk of a fresh run), its existing rows are cleared first —
// except those whose primary key the keep predicate claims — so a
// re-bootstrap of a stale replica converges to source state without
// wiping rows that live deltas already wrote during this run (a delta
// row beyond the final chunk's range would never be re-sent: the
// applied log dedups its op, and the snapshot read may predate it).
//
// Locks are pre-declared table-exclusive in sorted order, the same
// discipline the parallel integrator uses, so a chunk apply cannot
// deadlock against a concurrently scheduled delta group.
func (b *BootstrapLog) ApplyChunk(table string, rows []catalog.Tuple, lastKey []byte, keep func(pk catalog.Value) bool, tableDone, runDone bool) error {
	tbl, err := b.W.DB.Table(table)
	if err != nil {
		return err
	}
	if tbl.PKCol < 0 {
		return fmt.Errorf("warehouse: bootstrap chunk for %q requires a primary key", table)
	}
	pkName := tbl.Schema.Column(tbl.PKCol).Name
	locks := []string{table, BootstrapLogName}
	sort.Strings(locks)
	tx := b.W.DB.Begin()
	defer tx.Abort()
	if err := tx.LockTablesExclusive(locks...); err != nil {
		return err
	}
	first := true
	_, err = b.W.DB.IterateSelect(tx, &sqlmini.Select{
		Table: BootstrapLogName,
		Where: &sqlmini.Binary{Op: sqlmini.OpEq,
			L: &sqlmini.ColRef{Name: "b_table"},
			R: &sqlmini.Literal{Val: catalog.NewString(table)}},
	}, func(catalog.Tuple) error {
		first = false
		return nil
	})
	if err != nil {
		return err
	}
	if first {
		var stale []catalog.Value
		if err := b.W.DB.ScanTable(tx, table, func(row catalog.Tuple) error {
			if keep == nil || !keep(row[tbl.PKCol]) {
				stale = append(stale, row[tbl.PKCol])
			}
			return nil
		}); err != nil {
			return err
		}
		for _, pk := range stale {
			del := &sqlmini.Delete{Table: table, Where: &sqlmini.Binary{Op: sqlmini.OpEq,
				L: &sqlmini.ColRef{Name: pkName}, R: &sqlmini.Literal{Val: pk}}}
			if _, err := b.W.DB.ExecStmt(tx, del); err != nil {
				return err
			}
		}
	}
	for _, row := range rows {
		del := &sqlmini.Delete{Table: table, Where: &sqlmini.Binary{Op: sqlmini.OpEq,
			L: &sqlmini.ColRef{Name: pkName}, R: &sqlmini.Literal{Val: row[tbl.PKCol]}}}
		if _, err := b.W.DB.ExecStmt(tx, del); err != nil {
			return err
		}
		if err := b.W.DB.InsertTuple(tx, table, row); err != nil {
			return err
		}
	}
	state := int64(0)
	if tableDone {
		state = 1
	}
	key := catalog.NewNull(catalog.TypeBytes)
	if len(lastKey) > 0 {
		key = catalog.NewBytes(lastKey)
	}
	if !first {
		del := &sqlmini.Delete{Table: BootstrapLogName, Where: &sqlmini.Binary{Op: sqlmini.OpEq,
			L: &sqlmini.ColRef{Name: "b_table"}, R: &sqlmini.Literal{Val: catalog.NewString(table)}}}
		if _, err := b.W.DB.ExecStmt(tx, del); err != nil {
			return err
		}
	}
	row := catalog.Tuple{catalog.NewString(table), catalog.NewInt(state), key, catalog.NewInt(0)}
	if err := b.W.DB.InsertTuple(tx, BootstrapLogName, row); err != nil {
		return err
	}
	if runDone {
		m, base := int64(1), int64(0)
		_, err := b.W.DB.IterateSelect(tx, &sqlmini.Select{
			Table: BootstrapLogName,
			Where: &sqlmini.Binary{Op: sqlmini.OpEq,
				L: &sqlmini.ColRef{Name: "b_table"},
				R: &sqlmini.Literal{Val: catalog.NewString(metaRow)}},
		}, func(r catalog.Tuple) error {
			base = r[3].Int()
			return nil
		})
		if err != nil {
			return err
		}
		del := &sqlmini.Delete{Table: BootstrapLogName, Where: &sqlmini.Binary{Op: sqlmini.OpEq,
			L: &sqlmini.ColRef{Name: "b_table"}, R: &sqlmini.Literal{Val: catalog.NewString(metaRow)}}}
		if _, err := b.W.DB.ExecStmt(tx, del); err != nil {
			return err
		}
		meta := catalog.Tuple{
			catalog.NewString(metaRow), catalog.NewInt(m),
			catalog.NewNull(catalog.TypeBytes), catalog.NewInt(base),
		}
		if err := b.W.DB.InsertTuple(tx, BootstrapLogName, meta); err != nil {
			return err
		}
	}
	return tx.Commit()
}
