package warehouse

import (
	"fmt"
	"strings"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/opdelta"
	"opdelta/internal/sqlmini"
)

// registerJoinView materializes an equi-join view over two replica
// tables. Maintenance is incremental: a row change on either side is
// joined against the other side's replica and the affected view rows
// are patched — the NeedsAux classification from the analyzer.
//
// Join views require both sides' replicas (the auxiliary state) and
// project both sides' primary keys, so view rows are addressable.
func (w *Warehouse) registerJoinView(def opdelta.ViewDef, srcSchema, joinSchema *catalog.Schema) (*View, error) {
	if joinSchema == nil {
		return nil, fmt.Errorf("warehouse: join view %s needs the join partner's schema", def.Name)
	}
	if !w.HasReplica(def.Source) || !w.HasReplica(def.Join.Table) {
		return nil, fmt.Errorf("warehouse: join view %s requires replicas of %s and %s",
			def.Name, def.Source, def.Join.Table)
	}
	v := &View{Def: def, SrcSchema: srcSchema, JoinSchema: joinSchema, pkInView: -1}
	// Resolve projections: names may appear in either schema; left wins
	// on collision (names must be unique across sides to avoid
	// ambiguity, which CreateTable enforces anyway).
	projNames := def.Project
	if len(projNames) == 0 {
		for _, c := range srcSchema.Columns() {
			projNames = append(projNames, c.Name)
		}
		for _, c := range joinSchema.Columns() {
			projNames = append(projNames, c.Name)
		}
	}
	var cols []catalog.Column
	for _, name := range projNames {
		if i, ok := srcSchema.ColIndex(name); ok {
			v.projL = append(v.projL, i)
			cols = append(cols, srcSchema.Column(i))
			continue
		}
		if i, ok := joinSchema.ColIndex(name); ok {
			v.projR = append(v.projR, i)
			cols = append(cols, joinSchema.Column(i))
			continue
		}
		return nil, fmt.Errorf("warehouse: join view %s projects unknown column %q", def.Name, name)
	}
	v.Schema = catalog.NewSchema(cols...)
	// Both sides' PKs must be retained.
	lpk, err := w.sourcePKName(def.Source)
	if err != nil || lpk == "" {
		return nil, fmt.Errorf("warehouse: join view %s: source %s needs a primary key", def.Name, def.Source)
	}
	rpk, err := w.sourcePKName(def.Join.Table)
	if err != nil || rpk == "" {
		return nil, fmt.Errorf("warehouse: join view %s: source %s needs a primary key", def.Name, def.Join.Table)
	}
	if _, ok := v.Schema.ColIndex(lpk); !ok {
		return nil, fmt.Errorf("warehouse: join view %s must project %s.%s", def.Name, def.Source, lpk)
	}
	if _, ok := v.Schema.ColIndex(rpk); !ok {
		return nil, fmt.Errorf("warehouse: join view %s must project %s.%s", def.Name, def.Join.Table, rpk)
	}
	if _, err := w.DB.CreateTable(engine.TableDef{Name: def.Name, Schema: v.Schema}); err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.views[strings.ToLower(def.Source)] = append(w.views[strings.ToLower(def.Source)], v)
	w.views[strings.ToLower(def.Join.Table)] = append(w.views[strings.ToLower(def.Join.Table)], v)
	w.all = append(w.all, v)
	w.mu.Unlock()
	if err := w.installJoinTriggers(v, lpk, rpk); err != nil {
		return nil, err
	}
	return v, nil
}

// combineRow builds a view row from one row of each side.
func (v *View) combineRow(left, right catalog.Tuple) catalog.Tuple {
	out := make(catalog.Tuple, 0, len(v.projL)+len(v.projR))
	for _, i := range v.projL {
		out = append(out, left[i])
	}
	for _, i := range v.projR {
		out = append(out, right[i])
	}
	return out
}

func (w *Warehouse) installJoinTriggers(v *View, lpk, rpk string) error {
	leftCol, ok := v.SrcSchema.ColIndex(v.Def.Join.LeftCol)
	if !ok {
		return fmt.Errorf("warehouse: join column %q missing in %s", v.Def.Join.LeftCol, v.Def.Source)
	}
	rightCol, ok := v.JoinSchema.ColIndex(v.Def.Join.RightCol)
	if !ok {
		return fmt.Errorf("warehouse: join column %q missing in %s", v.Def.Join.RightCol, v.Def.Join.Table)
	}
	lpkIdx, _ := v.SrcSchema.ColIndex(lpk)
	rpkIdx, _ := v.JoinSchema.ColIndex(rpk)
	lpkView, _ := v.Schema.ColIndex(lpk)
	rpkView, _ := v.Schema.ColIndex(rpk)

	// probe returns the partner rows matching a join key.
	probe := func(tx *engine.Tx, table string, col string, key catalog.Value) ([]catalog.Tuple, error) {
		if key.IsNull() {
			return nil, nil // NULL join keys never match
		}
		sel := &sqlmini.Select{Table: table, Where: &sqlmini.Binary{
			Op: sqlmini.OpEq, L: &sqlmini.ColRef{Name: col}, R: &sqlmini.Literal{Val: key},
		}}
		var rows []catalog.Tuple
		_, err := w.DB.IterateSelect(tx, sel, func(t catalog.Tuple) error {
			rows = append(rows, t)
			return nil
		})
		return rows, err
	}
	// deleteByPK removes all view rows whose side-PK column equals key.
	deleteByPK := func(tx *engine.Tx, viewCol int, key catalog.Value) error {
		del := &sqlmini.Delete{Table: v.Def.Name, Where: &sqlmini.Binary{
			Op: sqlmini.OpEq, L: &sqlmini.ColRef{Name: v.Schema.Column(viewCol).Name},
			R: &sqlmini.Literal{Val: key},
		}}
		_, err := w.DB.ExecStmt(tx, del)
		return err
	}
	matchesSel := func(left catalog.Tuple) (bool, error) {
		if v.Def.Where == nil {
			return true, nil
		}
		return sqlmini.EvalPredicate(v.Def.Where, v.SrcSchema, left)
	}

	insertLeft := func(tx *engine.Tx, left catalog.Tuple) error {
		if ok, err := matchesSel(left); err != nil || !ok {
			return err
		}
		partners, err := probe(tx, v.Def.Join.Table, v.Def.Join.RightCol, left[leftCol])
		if err != nil {
			return err
		}
		for _, right := range partners {
			if err := w.DB.InsertTuple(tx, v.Def.Name, v.combineRow(left, right)); err != nil {
				return err
			}
		}
		return nil
	}
	insertRight := func(tx *engine.Tx, right catalog.Tuple) error {
		partners, err := probe(tx, v.Def.Source, v.Def.Join.LeftCol, right[rightCol])
		if err != nil {
			return err
		}
		for _, left := range partners {
			if ok, err := matchesSel(left); err != nil {
				return err
			} else if !ok {
				continue
			}
			if err := w.DB.InsertTuple(tx, v.Def.Name, v.combineRow(left, right)); err != nil {
				return err
			}
		}
		return nil
	}

	leftTrig := engine.Trigger{
		Name: "join_" + v.Def.Name + "_l", OnInsert: true, OnDelete: true, OnUpdate: true,
		Fn: func(tx *engine.Tx, ev engine.TriggerEvent) error {
			switch ev.Op {
			case engine.TrigInsert:
				return insertLeft(tx, ev.After)
			case engine.TrigDelete:
				return deleteByPK(tx, lpkView, ev.Before[lpkIdx])
			case engine.TrigUpdate:
				if err := deleteByPK(tx, lpkView, ev.Before[lpkIdx]); err != nil {
					return err
				}
				return insertLeft(tx, ev.After)
			}
			return nil
		},
	}
	rightTrig := engine.Trigger{
		Name: "join_" + v.Def.Name + "_r", OnInsert: true, OnDelete: true, OnUpdate: true,
		Fn: func(tx *engine.Tx, ev engine.TriggerEvent) error {
			switch ev.Op {
			case engine.TrigInsert:
				return insertRight(tx, ev.After)
			case engine.TrigDelete:
				return deleteByPK(tx, rpkView, ev.Before[rpkIdx])
			case engine.TrigUpdate:
				if err := deleteByPK(tx, rpkView, ev.Before[rpkIdx]); err != nil {
					return err
				}
				return insertRight(tx, ev.After)
			}
			return nil
		},
	}
	if err := w.DB.CreateTrigger(v.Def.Source, leftTrig); err != nil {
		return err
	}
	return w.DB.CreateTrigger(v.Def.Join.Table, rightTrig)
}
