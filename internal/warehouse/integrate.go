package warehouse

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/extract"
	"opdelta/internal/opdelta"
	"opdelta/internal/sqlmini"
)

// ApplyStats summarizes one integration run.
type ApplyStats struct {
	// Records is the number of deltas or ops consumed.
	Records int
	// Statements is the number of SQL statements executed at the
	// warehouse — the cost driver §4.1 contrasts: one statement per op
	// versus one (or two) per affected row.
	Statements int
	// Txns is the number of warehouse transactions used.
	Txns int
	// Duration is wall-clock integration time (the maintenance window).
	Duration time.Duration
}

// ValueDeltaIntegrator applies value deltas the way §4.1 describes:
// the whole differential is one indivisible batch transaction, and each
// delta record is translated into SQL — inserts into one INSERT, deletes
// into one DELETE (by key, from the before image), updates into one
// DELETE plus one INSERT.
type ValueDeltaIntegrator struct {
	W *Warehouse

	mOnce sync.Once
	m     *applyMetrics
}

func (in *ValueDeltaIntegrator) metrics() *applyMetrics {
	in.mOnce.Do(func() { in.m = newApplyMetrics(in.W.DB.Obs(), "value") })
	return in.m
}

// Apply integrates the differential as a single batch transaction. The
// batch writes most of every table it touches, so its lock footprint —
// whole-table exclusive on each — is pre-declared upfront: concurrent
// readers queue once behind the batch instead of interleaving key-range
// grants with its row statements, which can only untangle through lock
// timeouts.
func (in *ValueDeltaIntegrator) Apply(deltas []extract.Delta) (ApplyStats, error) {
	m := in.metrics()
	start := time.Now()
	stats := ApplyStats{Txns: 1}
	tx := in.W.DB.Begin()
	if err := tx.LockTablesExclusive(in.batchTables(deltas)...); err != nil {
		tx.Abort()
		return stats, err
	}
	for _, d := range deltas {
		n, err := in.applyOne(tx, d)
		stats.Statements += n
		if err != nil {
			tx.Abort()
			return stats, err
		}
		stats.Records++
	}
	if err := tx.Commit(); err != nil {
		return stats, err
	}
	stats.Duration = time.Since(start)
	m.txns.Inc()
	m.records.Add(uint64(stats.Records))
	m.statements.Add(uint64(stats.Statements))
	m.txnSeconds.ObserveDuration(stats.Duration)
	return stats, nil
}

// batchTables collects every warehouse table the batch transaction will
// touch: replicas of the delta tables, dependent select-project and
// join views (join maintenance also probes the partner replica), and
// aggregate views.
func (in *ValueDeltaIntegrator) batchTables(deltas []extract.Delta) []string {
	seen := make(map[string]bool)
	add := func(name string) {
		seen[strings.ToLower(name)] = true
	}
	done := make(map[string]bool)
	for _, d := range deltas {
		if done[strings.ToLower(d.Table)] {
			continue // same source table: contributes nothing new
		}
		done[strings.ToLower(d.Table)] = true
		if in.W.HasReplica(d.Table) {
			add(d.Table)
		}
		for _, v := range in.W.ViewsOn(d.Table) {
			add(v.Def.Name)
			if v.Def.Join != nil {
				add(v.Def.Join.Table)
				add(v.Def.Source)
			}
		}
		for _, av := range in.W.AggViewsOn(d.Table) {
			add(av.Def.Name)
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func (in *ValueDeltaIntegrator) applyOne(tx *engine.Tx, d extract.Delta) (int, error) {
	if in.W.HasReplica(d.Table) {
		return in.applyToReplica(tx, d)
	}
	// View-only deployment: maintain each dependent view directly from
	// the images (value deltas always carry enough state for this).
	views := in.W.ViewsOn(d.Table)
	stmts := 0
	for _, v := range views {
		if v.Def.Join != nil {
			return stmts, fmt.Errorf("warehouse: join view %s requires replicas", v.Def.Name)
		}
		var err error
		switch d.Kind {
		case extract.KindInsert:
			err = in.W.viewInsert(tx, v, d.After)
		case extract.KindDelete:
			err = in.W.viewDelete(tx, v, d.Before)
		case extract.KindUpdate:
			err = in.W.viewUpdate(tx, v, d.Before, d.After)
		case extract.KindUpsert:
			// Timestamp-method deltas have no before image: delete any
			// existing view row by PK, then insert.
			if v.pkInView >= 0 {
				if err = in.W.deleteViewRow(tx, v, v.project(d.After)); err != nil {
					break
				}
				stmts++
			}
			err = in.W.viewInsert(tx, v, d.After)
		default:
			err = fmt.Errorf("warehouse: cannot apply delta kind %v", d.Kind)
		}
		stmts++
		if err != nil {
			return stmts, err
		}
	}
	return stmts, nil
}

// applyToReplica translates one value delta into SQL statements against
// the replica table. Dependent views follow via the replica triggers.
func (in *ValueDeltaIntegrator) applyToReplica(tx *engine.Tx, d extract.Delta) (int, error) {
	t, err := in.W.DB.Table(d.Table)
	if err != nil {
		return 0, err
	}
	sqls, err := DeltaSQL(d, t)
	if err != nil {
		return 0, err
	}
	for i, stmt := range sqls {
		if _, err := in.W.DB.Exec(tx, stmt); err != nil {
			return i, fmt.Errorf("warehouse: applying %q: %w", stmt, err)
		}
	}
	return len(sqls), nil
}

// DeltaSQL renders the SQL statement(s) that integrate one value delta
// into a replica table, exactly as §4.1 describes the translation.
func DeltaSQL(d extract.Delta, t *engine.Table) ([]string, error) {
	if t.PKCol < 0 {
		return nil, fmt.Errorf("warehouse: value-delta integration into %s needs a primary key", t.Name)
	}
	pkName := t.Schema.Column(t.PKCol).Name
	insert := func(img catalog.Tuple) string {
		var b strings.Builder
		b.WriteString("INSERT INTO ")
		b.WriteString(t.Name)
		b.WriteString(" VALUES (")
		for i, v := range img {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.SQLLiteral())
		}
		b.WriteString(")")
		return b.String()
	}
	deleteByPK := func(img catalog.Tuple) string {
		return fmt.Sprintf("DELETE FROM %s WHERE %s = %s", t.Name, pkName, img[t.PKCol].SQLLiteral())
	}
	switch d.Kind {
	case extract.KindInsert:
		if d.After == nil {
			return nil, fmt.Errorf("warehouse: insert delta without after image")
		}
		return []string{insert(d.After)}, nil
	case extract.KindDelete:
		if d.Before == nil {
			return nil, fmt.Errorf("warehouse: delete delta without before image")
		}
		return []string{deleteByPK(d.Before)}, nil
	case extract.KindUpdate:
		if d.Before == nil || d.After == nil {
			return nil, fmt.Errorf("warehouse: update delta missing an image")
		}
		// "each original update transaction ... translated into x SQL
		// delete statements (from before image) and x SQL insert
		// statements (from after image)"
		return []string{deleteByPK(d.Before), insert(d.After)}, nil
	case extract.KindUpsert:
		if d.After == nil {
			return nil, fmt.Errorf("warehouse: upsert delta without after image")
		}
		// The timestamp method cannot tell insert from update: delete
		// any existing row by key, then insert the final image.
		return []string{deleteByPK(d.After), insert(d.After)}, nil
	default:
		return nil, fmt.Errorf("warehouse: unknown delta kind %v", d.Kind)
	}
}

// OpDeltaIntegrator replays Op-Deltas: each op runs as its own
// warehouse transaction (preserving source transaction boundaries), so
// integration interleaves with concurrent OLAP queries instead of
// requiring an outage.
type OpDeltaIntegrator struct {
	W *Warehouse
	// GroupByTxn applies ops of the same source transaction inside one
	// warehouse transaction, reproducing source atomicity exactly.
	// Default false: one transaction per op.
	GroupByTxn bool

	mOnce sync.Once
	m     *applyMetrics
}

func (in *OpDeltaIntegrator) metrics() *applyMetrics {
	in.mOnce.Do(func() { in.m = newApplyMetrics(in.W.DB.Obs(), "op") })
	return in.m
}

// Apply replays the ops in order. Ops carrying a lifecycle trace are
// stamped applied when their statements have run and durable once
// their warehouse transaction commits.
func (in *OpDeltaIntegrator) Apply(ops []*opdelta.Op) (ApplyStats, error) {
	m := in.metrics()
	start := time.Now()
	var stats ApplyStats
	i := 0
	for i < len(ops) {
		// Determine the group [i, j) sharing one warehouse transaction.
		j := i + 1
		if in.GroupByTxn {
			for j < len(ops) && ops[j].Txn == ops[i].Txn {
				j++
			}
		}
		txStart := time.Now()
		tx := in.W.DB.Begin()
		for _, op := range ops[i:j] {
			n, err := in.applyOne(tx, op)
			stats.Statements += n
			if err != nil {
				tx.Abort()
				return stats, fmt.Errorf("warehouse: op %d (%s): %w", op.Seq, op.Stmt, err)
			}
			op.Trace.Applied()
			stats.Records++
		}
		if err := tx.Commit(); err != nil {
			return stats, err
		}
		for _, op := range ops[i:j] {
			op.Trace.Durable()
			op.Trace.Done()
		}
		m.txns.Inc()
		m.txnSeconds.ObserveDuration(time.Since(txStart))
		stats.Txns++
		i = j
	}
	stats.Duration = time.Since(start)
	m.records.Add(uint64(stats.Records))
	m.statements.Add(uint64(stats.Statements))
	return stats, nil
}

func (in *OpDeltaIntegrator) applyOne(tx *engine.Tx, op *opdelta.Op) (int, error) {
	stmts := 0
	stmt, err := op.Statement()
	if err != nil {
		return 0, err
	}
	if in.W.HasReplica(op.Table) {
		// The replica shares the source schema and name: the op applies
		// verbatim; dependent views follow via triggers.
		if _, err := in.W.DB.ExecStmt(tx, stmt); err != nil {
			return stmts, err
		}
		stmts++
		return stmts, nil
	}
	// View-only deployment: apply the transformation rules per view.
	for _, v := range in.W.ViewsOn(op.Table) {
		n, err := in.applyToView(tx, v, op, stmt)
		stmts += n
		if err != nil {
			return stmts, err
		}
	}
	return stmts, nil
}

// applyToView refreshes one SP view from an op, using the hybrid before
// images when the analyzer required them at capture time.
func (in *OpDeltaIntegrator) applyToView(tx *engine.Tx, v *View, op *opdelta.Op, stmt sqlmini.Statement) (int, error) {
	if v.Def.Join != nil {
		return 0, fmt.Errorf("warehouse: join view %s requires replicas", v.Def.Name)
	}
	switch v.Def.Classify(stmt) {
	case opdelta.SelfMaintainable:
		return in.applySelfMaintainable(tx, v, op, stmt)
	case opdelta.NeedsBefore:
		if !op.Hybrid {
			return 0, fmt.Errorf("warehouse: op %d needs before images for view %s but carries none "+
				"(capture without an analyzer?)", op.Seq, v.Def.Name)
		}
		return in.applyWithBeforeImages(tx, v, op, stmt)
	default:
		return 0, fmt.Errorf("warehouse: unsupported classification for view %s", v.Def.Name)
	}
}

func (in *OpDeltaIntegrator) applySelfMaintainable(tx *engine.Tx, v *View, op *opdelta.Op, stmt sqlmini.Statement) (int, error) {
	switch s := stmt.(type) {
	case *sqlmini.Insert:
		// Materialize the inserted rows from the statement's literals,
		// then filter and project into the view.
		rows, err := rowsFromInsert(s, v.SrcSchema, v.Def.SourceTS, op.Time)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, row := range rows {
			if err := in.W.viewInsert(tx, v, row); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	case *sqlmini.Delete:
		// The predicate references only retained columns: run it
		// directly against the view (rows in the view already satisfy
		// the view selection), with source columns renamed to their
		// warehouse names.
		del := &sqlmini.Delete{Table: v.Def.Name, Where: renameExpr(s.Where, &v.Def)}
		if _, err := in.W.DB.ExecStmt(tx, del); err != nil {
			return 0, err
		}
		return 1, nil
	case *sqlmini.Update:
		upd := &sqlmini.Update{Table: v.Def.Name, Where: renameExpr(s.Where, &v.Def)}
		for _, a := range s.Assigns {
			// Assignments to non-retained columns are no-ops on the view.
			renamed := v.Def.RenameOf(a.Col)
			if _, ok := v.Schema.ColIndex(renamed); ok {
				upd.Assigns = append(upd.Assigns, sqlmini.Assign{
					Col: renamed, Value: renameExpr(a.Value, &v.Def)})
			}
		}
		if len(upd.Assigns) == 0 {
			return 0, nil
		}
		if _, err := in.W.DB.ExecStmt(tx, upd); err != nil {
			return 0, err
		}
		return 1, nil
	default:
		return 0, fmt.Errorf("warehouse: cannot apply %T as op-delta", stmt)
	}
}

func (in *OpDeltaIntegrator) applyWithBeforeImages(tx *engine.Tx, v *View, op *opdelta.Op, stmt sqlmini.Statement) (int, error) {
	n := 0
	switch s := stmt.(type) {
	case *sqlmini.Delete:
		for _, before := range op.Before {
			if err := in.W.viewDelete(tx, v, before); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	case *sqlmini.Update:
		for _, before := range op.Before {
			after, err := applyAssigns(s.Assigns, v.SrcSchema, before)
			if err != nil {
				return n, err
			}
			if err := in.W.viewUpdate(tx, v, before, after); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	default:
		return 0, fmt.Errorf("warehouse: before-image application undefined for %T", stmt)
	}
}

// rowsFromInsert evaluates an INSERT statement's literal rows into full
// source tuples (missing columns NULL, the named engine-maintained
// timestamp column stamped with the op's capture time so replays are
// deterministic).
func rowsFromInsert(s *sqlmini.Insert, schema *catalog.Schema, tsCol string, opTime time.Time) ([]catalog.Tuple, error) {
	tsIdx := -1
	if tsCol != "" {
		if i, ok := schema.ColIndex(tsCol); ok {
			tsIdx = i
		}
	}
	empty := catalog.NewSchema()
	var positions []int
	if s.Columns != nil {
		positions = make([]int, len(s.Columns))
		for i, name := range s.Columns {
			idx, ok := schema.ColIndex(name)
			if !ok {
				return nil, fmt.Errorf("warehouse: no column %q", name)
			}
			positions[i] = idx
		}
	}
	out := make([]catalog.Tuple, 0, len(s.Rows))
	for _, row := range s.Rows {
		tup := make(catalog.Tuple, schema.NumColumns())
		for i := range tup {
			tup[i] = catalog.NewNull(schema.Column(i).Type)
		}
		if positions == nil && len(row) != schema.NumColumns() {
			return nil, fmt.Errorf("warehouse: insert arity mismatch")
		}
		for i, e := range row {
			v, err := sqlmini.Eval(e, empty, nil)
			if err != nil {
				return nil, err
			}
			pos := i
			if positions != nil {
				pos = positions[i]
			}
			if !v.IsNull() && v.Type() == catalog.TypeInt64 && schema.Column(pos).Type == catalog.TypeFloat64 {
				v = catalog.NewFloat(float64(v.Int()))
			}
			tup[pos] = v
		}
		if tsIdx >= 0 && tup[tsIdx].IsNull() {
			tup[tsIdx] = catalog.NewTime(opTime)
		}
		out = append(out, tup)
	}
	return out, nil
}

// renameExpr rewrites column references in e from source names to the
// view's warehouse names (the transformation rules). Returns nil for a
// nil expression.
func renameExpr(e sqlmini.Expr, def *opdelta.ViewDef) sqlmini.Expr {
	if e == nil || len(def.Rename) == 0 {
		return e
	}
	switch x := e.(type) {
	case *sqlmini.ColRef:
		return &sqlmini.ColRef{Name: def.RenameOf(x.Name)}
	case *sqlmini.Binary:
		return &sqlmini.Binary{Op: x.Op, L: renameExpr(x.L, def), R: renameExpr(x.R, def)}
	case *sqlmini.IsNull:
		return &sqlmini.IsNull{Expr: renameExpr(x.Expr, def), Negate: x.Negate}
	default:
		return e
	}
}

// applyAssigns computes the after image of one row under an UPDATE's
// SET list.
func applyAssigns(assigns []sqlmini.Assign, schema *catalog.Schema, before catalog.Tuple) (catalog.Tuple, error) {
	after := before.Clone()
	for _, a := range assigns {
		pos, ok := schema.ColIndex(a.Col)
		if !ok {
			return nil, fmt.Errorf("warehouse: no column %q", a.Col)
		}
		v, err := sqlmini.Eval(a.Value, schema, before)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Type() == catalog.TypeInt64 && schema.Column(pos).Type == catalog.TypeFloat64 {
			v = catalog.NewFloat(float64(v.Int()))
		}
		after[pos] = v
	}
	return after, nil
}
