package warehouse

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/extract"
	"opdelta/internal/opdelta"
	"opdelta/internal/sqlmini"
)

type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock { return &clock{now: time.Date(2000, 3, 1, 0, 0, 0, 0, time.UTC)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Millisecond)
	return c.now
}

func openDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := engine.Open(t.TempDir(), engine.Options{Now: newClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

const partsDDL = `CREATE TABLE parts (
	part_id BIGINT NOT NULL, status VARCHAR, qty BIGINT, last_modified TIMESTAMP
) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`

func partsSchema(t *testing.T, db *engine.DB) *catalog.Schema {
	t.Helper()
	tbl, err := db.Table("parts")
	if err != nil {
		t.Fatal(err)
	}
	return tbl.Schema
}

// sourceWithCapture builds a source DB with both trigger-based value
// capture and op capture installed.
func sourceWithCapture(t *testing.T, analyzer *opdelta.Analyzer) (*engine.DB, *extract.TriggerCapture, *opdelta.Capture, *opdelta.TableLog) {
	t.Helper()
	src := openDB(t)
	if _, err := src.Exec(nil, partsDDL); err != nil {
		t.Fatal(err)
	}
	vc := &extract.TriggerCapture{DB: src, Table: "parts"}
	if err := vc.Install(); err != nil {
		t.Fatal(err)
	}
	log, err := opdelta.NewTableLog(src)
	if err != nil {
		t.Fatal(err)
	}
	oc := &opdelta.Capture{DB: src, Log: log, Analyzer: analyzer}
	return src, vc, oc, log
}

// replicaWarehouse builds a warehouse with a parts replica.
func replicaWarehouse(t *testing.T, schema *catalog.Schema) *Warehouse {
	t.Helper()
	w := New(openDB(t))
	if err := w.RegisterReplica("parts", schema, "part_id", "last_modified"); err != nil {
		t.Fatal(err)
	}
	return w
}

// tableRows reads all rows of a table sorted by first column's string.
func tableRows(t *testing.T, db *engine.DB, table string) []catalog.Tuple {
	t.Helper()
	_, rows, err := db.Query(nil, "SELECT * FROM "+table)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].String() < rows[j][0].String() })
	return rows
}

// rowsEqualIgnoringTS compares row sets ignoring TIMESTAMP columns
// (op-delta replay re-stamps engine-maintained timestamps, like
// statement-based replication).
func rowsEqualIgnoringTS(a, b []catalog.Tuple, schema *catalog.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := 0; j < schema.NumColumns(); j++ {
			if schema.Column(j).Type == catalog.TypeTime {
				continue
			}
			if !catalog.Equal(a[i][j], b[i][j]) &&
				!(a[i][j].IsNull() && b[i][j].IsNull()) {
				return false
			}
		}
	}
	return true
}

func TestValueDeltaIntegrationIntoReplica(t *testing.T) {
	src, vc, _, _ := sourceWithCapture(t, nil)
	schema := partsSchema(t, src)
	src.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 2), (3, 'c', 3)`)
	src.Exec(nil, `UPDATE parts SET status = 'bb' WHERE part_id = 2`)
	src.Exec(nil, `DELETE FROM parts WHERE part_id = 3`)

	var sink extract.CollectSink
	if _, err := vc.Extract(&sink); err != nil {
		t.Fatal(err)
	}
	w := replicaWarehouse(t, schema)
	stats, err := (&ValueDeltaIntegrator{W: w}).Apply(sink.Deltas)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 5 || stats.Txns != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Update = delete+insert -> 3 inserts + 1 upd(2) + 1 del = 6 stmts.
	if stats.Statements != 6 {
		t.Fatalf("statements = %d, want 6", stats.Statements)
	}
	srcRows := tableRows(t, src, "parts")
	whRows := tableRows(t, w.DB, "parts")
	if len(whRows) != 2 {
		t.Fatalf("warehouse rows = %d", len(whRows))
	}
	for i := range srcRows {
		if !srcRows[i].Equal(whRows[i]) {
			t.Fatalf("exact replica mismatch:\n src %v\n  wh %v", srcRows[i], whRows[i])
		}
	}
}

func TestOpDeltaIntegrationIntoReplica(t *testing.T) {
	src, _, oc, log := sourceWithCapture(t, nil)
	schema := partsSchema(t, src)
	oc.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 2), (3, 'c', 3)`)
	oc.Exec(nil, `UPDATE parts SET status = 'bb', qty = qty * 10 WHERE part_id >= 2`)
	oc.Exec(nil, `DELETE FROM parts WHERE qty > 25`)

	ops, err := log.Read(0)
	if err != nil || len(ops) != 3 {
		t.Fatalf("ops: %d, %v", len(ops), err)
	}
	w := replicaWarehouse(t, schema)
	stats, err := (&OpDeltaIntegrator{W: w}).Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 || stats.Txns != 3 || stats.Statements != 3 {
		t.Fatalf("stats = %+v (one statement per op, one txn per op)", stats)
	}
	srcRows := tableRows(t, src, "parts")
	whRows := tableRows(t, w.DB, "parts")
	if !rowsEqualIgnoringTS(srcRows, whRows, schema) {
		t.Fatalf("replica mismatch:\n src %v\n  wh %v", srcRows, whRows)
	}
}

func TestOpDeltaGroupByTxn(t *testing.T) {
	src, _, oc, log := sourceWithCapture(t, nil)
	schema := partsSchema(t, src)
	tx := src.Begin()
	oc.Exec(tx, `INSERT INTO parts (part_id) VALUES (1)`)
	oc.Exec(tx, `INSERT INTO parts (part_id) VALUES (2)`)
	tx.Commit()
	oc.Exec(nil, `INSERT INTO parts (part_id) VALUES (3)`)

	ops, _ := log.Read(0)
	w := replicaWarehouse(t, schema)
	stats, err := (&OpDeltaIntegrator{W: w, GroupByTxn: true}).Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Txns != 2 {
		t.Fatalf("txns = %d, want 2 (source boundaries preserved)", stats.Txns)
	}
}

func TestSPViewMaintenanceViaReplicaTriggers(t *testing.T) {
	src, vc, _, _ := sourceWithCapture(t, nil)
	schema := partsSchema(t, src)
	w := replicaWarehouse(t, schema)
	where, _ := sqlmini.ParseExpr(`status = 'active'`)
	if _, err := w.RegisterView(opdelta.ViewDef{
		Name: "active_parts", Source: "parts",
		Project: []string{"part_id", "qty"}, Where: where,
	}, schema, nil); err != nil {
		t.Fatal(err)
	}

	src.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'active', 10), (2, 'dead', 20), (3, 'active', 30)`)
	src.Exec(nil, `UPDATE parts SET status = 'dead' WHERE part_id = 1`)   // leaves view
	src.Exec(nil, `UPDATE parts SET status = 'active' WHERE part_id = 2`) // enters view
	src.Exec(nil, `UPDATE parts SET qty = 99 WHERE part_id = 3`)          // stays, changes
	src.Exec(nil, `DELETE FROM parts WHERE part_id = 2`)                  // leaves via delete

	var sink extract.CollectSink
	vc.Extract(&sink)
	if _, err := (&ValueDeltaIntegrator{W: w}).Apply(sink.Deltas); err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, w.DB, "active_parts")
	if len(rows) != 1 || rows[0][0].Int() != 3 || rows[0][1].Int() != 99 {
		t.Fatalf("view rows = %v", rows)
	}
}

func TestViewOnlyOpDeltaSelfMaintainable(t *testing.T) {
	view := opdelta.ViewDef{
		Name: "slim_parts", Source: "parts",
		Project:  []string{"part_id", "status"},
		SourcePK: "part_id", SourceTS: "last_modified",
	}
	analyzer := opdelta.NewAnalyzer(view)
	src, _, oc, log := sourceWithCapture(t, analyzer)
	schema := partsSchema(t, src)

	// Warehouse stores ONLY the view — no replica.
	w := New(openDB(t))
	if _, err := w.RegisterView(view, schema, nil); err != nil {
		t.Fatal(err)
	}

	oc.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 2)`)
	oc.Exec(nil, `UPDATE parts SET status = 'z' WHERE part_id = 1`) // self-maintainable
	oc.Exec(nil, `DELETE FROM parts WHERE status = 'b'`)            // self-maintainable
	oc.Exec(nil, `DELETE FROM parts WHERE qty > 100`)               // hybrid (matches none)

	ops, _ := log.Read(0)
	if _, err := (&OpDeltaIntegrator{W: w}).Apply(ops); err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, w.DB, "slim_parts")
	if len(rows) != 1 || rows[0][0].Int() != 1 || rows[0][1].Str() != "z" {
		t.Fatalf("view rows = %v", rows)
	}
}

func TestViewOnlyOpDeltaHybrid(t *testing.T) {
	view := opdelta.ViewDef{
		Name: "slim_parts", Source: "parts",
		Project:  []string{"part_id", "status"},
		SourcePK: "part_id", SourceTS: "last_modified",
	}
	analyzer := opdelta.NewAnalyzer(view)
	src, _, oc, log := sourceWithCapture(t, analyzer)
	schema := partsSchema(t, src)
	w := New(openDB(t))
	if _, err := w.RegisterView(view, schema, nil); err != nil {
		t.Fatal(err)
	}
	oc.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'a', 1), (2, 'b', 200), (3, 'c', 300)`)
	// Predicate over the dropped qty column: hybrid capture kicks in.
	oc.Exec(nil, `DELETE FROM parts WHERE qty >= 200 AND qty < 250`)
	oc.Exec(nil, `UPDATE parts SET status = 'big' WHERE qty > 250`)

	ops, _ := log.Read(0)
	if len(ops) != 3 || ops[1].Before == nil || ops[2].Before == nil {
		t.Fatalf("hybrid capture missing: %+v", ops)
	}
	if _, err := (&OpDeltaIntegrator{W: w}).Apply(ops); err != nil {
		t.Fatal(err)
	}
	rows := tableRows(t, w.DB, "slim_parts")
	if len(rows) != 2 {
		t.Fatalf("view rows = %v", rows)
	}
	if rows[0][1].Str() != "a" || rows[1][1].Str() != "big" {
		t.Fatalf("view rows = %v", rows)
	}
	// Without before images the same op must fail loudly.
	opsNoBefore := []*opdelta.Op{{Seq: 99, Kind: opdelta.OpDelete, Table: "parts",
		Stmt: `DELETE FROM parts WHERE qty = 1`}}
	if _, err := (&OpDeltaIntegrator{W: w}).Apply(opsNoBefore); err == nil ||
		!strings.Contains(err.Error(), "before images") {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinViewMaintenance(t *testing.T) {
	src := openDB(t)
	if _, err := src.Exec(nil, partsDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Exec(nil, `CREATE TABLE orders (
		order_id BIGINT NOT NULL, part_id BIGINT, amount BIGINT
	) PRIMARY KEY (order_id)`); err != nil {
		t.Fatal(err)
	}
	parts := partsSchema(t, src)
	ordersTbl, _ := src.Table("orders")

	w := New(openDB(t))
	if err := w.RegisterReplica("parts", parts, "part_id", "last_modified"); err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterReplica("orders", ordersTbl.Schema, "order_id", ""); err != nil {
		t.Fatal(err)
	}
	def := opdelta.ViewDef{
		Name: "order_parts", Source: "orders",
		Project: []string{"order_id", "amount", "part_id", "status"},
		Join:    &opdelta.JoinSpec{Table: "parts", LeftCol: "part_id", RightCol: "part_id"},
	}
	if _, err := w.RegisterView(def, ordersTbl.Schema, parts); err != nil {
		t.Fatal(err)
	}

	// Drive the warehouse replicas directly with ops (the integrator's
	// replica path).
	in := &OpDeltaIntegrator{W: w}
	mustApply := func(stmts ...string) {
		t.Helper()
		var ops []*opdelta.Op
		for i, s := range stmts {
			kind := opdelta.OpInsert
			if strings.HasPrefix(s, "UPDATE") {
				kind = opdelta.OpUpdate
			} else if strings.HasPrefix(s, "DELETE") {
				kind = opdelta.OpDelete
			}
			table := "orders"
			if strings.Contains(s, " parts") || strings.Contains(s, "parts ") {
				if !strings.Contains(s, "order") {
					table = "parts"
				}
			}
			ops = append(ops, &opdelta.Op{Seq: uint64(i + 1), Kind: kind, Table: table, Stmt: s})
		}
		if _, err := in.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(
		`INSERT INTO parts (part_id, status, qty) VALUES (1, 'avail', 0), (2, 'back', 0)`,
		`INSERT INTO orders VALUES (100, 1, 5), (101, 2, 7), (102, 1, 9)`,
	)
	rows := tableRows(t, w.DB, "order_parts")
	if len(rows) != 3 {
		t.Fatalf("join view rows = %v", rows)
	}
	// order 100 joined part 1.
	if rows[0][0].Int() != 100 || rows[0][3].Str() != "avail" {
		t.Fatalf("row = %v", rows[0])
	}
	// Update the right side: statuses propagate.
	mustApply(`UPDATE parts SET status = 'gone' WHERE part_id = 1`)
	rows = tableRows(t, w.DB, "order_parts")
	cnt := 0
	for _, r := range rows {
		if r[3].Str() == "gone" {
			cnt++
		}
	}
	if cnt != 2 {
		t.Fatalf("status propagation: %v", rows)
	}
	// Delete an order: its join row disappears.
	mustApply(`DELETE FROM orders WHERE order_id = 101`)
	rows = tableRows(t, w.DB, "order_parts")
	if len(rows) != 2 {
		t.Fatalf("rows after order delete = %v", rows)
	}
	// Delete a part: all its orders' join rows disappear.
	mustApply(`DELETE FROM parts WHERE part_id = 1`)
	rows = tableRows(t, w.DB, "order_parts")
	if len(rows) != 0 {
		t.Fatalf("rows after part delete = %v", rows)
	}
}

func TestJoinViewRequiresReplicas(t *testing.T) {
	src := openDB(t)
	src.Exec(nil, partsDDL)
	parts := partsSchema(t, src)
	w := New(openDB(t))
	def := opdelta.ViewDef{Name: "jv", Source: "orders",
		Join: &opdelta.JoinSpec{Table: "parts", LeftCol: "part_id", RightCol: "part_id"}}
	if _, err := w.RegisterView(def, parts, parts); err == nil {
		t.Fatal("join view without replicas must fail")
	}
}

// TestQuickOpDeltaValueDeltaEquivalence is the core correctness
// property: for random workloads, integrating via value deltas and via
// Op-Deltas yields the same warehouse state (ignoring engine-maintained
// timestamps for the op path), which must also equal the source state.
func TestQuickOpDeltaValueDeltaEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src, err := engine.Open(t.TempDir(), engine.Options{Now: newClock().Now})
		if err != nil {
			return false
		}
		defer src.Close()
		if _, err := src.Exec(nil, partsDDL); err != nil {
			return false
		}
		vc := &extract.TriggerCapture{DB: src, Table: "parts"}
		if err := vc.Install(); err != nil {
			return false
		}
		log, err := opdelta.NewTableLog(src)
		if err != nil {
			return false
		}
		oc := &opdelta.Capture{DB: src, Log: log}

		nextID := int64(0)
		for step := 0; step < 40; step++ {
			var stmt string
			switch r.Intn(4) {
			case 0, 1:
				k := 1 + r.Intn(3)
				vals := make([]string, k)
				for i := range vals {
					vals[i] = fmt.Sprintf("(%d, 's%d', %d)", nextID, r.Intn(4), r.Int63n(100))
					nextID++
				}
				stmt = "INSERT INTO parts (part_id, status, qty) VALUES " + strings.Join(vals, ", ")
			case 2:
				stmt = fmt.Sprintf("UPDATE parts SET qty = qty + %d, status = 'u%d' WHERE part_id BETWEEN %d AND %d",
					r.Int63n(10), r.Intn(4), r.Int63n(nextID+1), r.Int63n(nextID+1))
			case 3:
				lo := r.Int63n(nextID + 1)
				stmt = fmt.Sprintf("DELETE FROM parts WHERE part_id BETWEEN %d AND %d", lo, lo+r.Int63n(4))
			}
			if _, err := oc.Exec(nil, stmt); err != nil {
				return false
			}
		}

		schema, err := src.Table("parts")
		if err != nil {
			return false
		}
		// Value-delta warehouse.
		wv := New(mustOpen(t))
		if err := wv.RegisterReplica("parts", schema.Schema, "part_id", "last_modified"); err != nil {
			return false
		}
		var sink extract.CollectSink
		if _, err := vc.Extract(&sink); err != nil {
			return false
		}
		if _, err := (&ValueDeltaIntegrator{W: wv}).Apply(sink.Deltas); err != nil {
			return false
		}
		// Op-delta warehouse.
		wo := New(mustOpen(t))
		if err := wo.RegisterReplica("parts", schema.Schema, "part_id", "last_modified"); err != nil {
			return false
		}
		ops, err := log.Read(0)
		if err != nil {
			return false
		}
		if _, err := (&OpDeltaIntegrator{W: wo}).Apply(ops); err != nil {
			return false
		}

		srcRows := tableRows(t, src, "parts")
		vRows := tableRows(t, wv.DB, "parts")
		oRows := tableRows(t, wo.DB, "parts")
		// Value deltas reproduce the source exactly (timestamps included).
		if len(srcRows) != len(vRows) {
			return false
		}
		for i := range srcRows {
			if !srcRows[i].Equal(vRows[i]) {
				return false
			}
		}
		// Op deltas reproduce everything except re-stamped timestamps.
		return rowsEqualIgnoringTS(srcRows, oRows, schema.Schema)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func mustOpen(t *testing.T) *engine.DB {
	db, err := engine.Open(t.TempDir(), engine.Options{Now: newClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDeltaSQLShapes(t *testing.T) {
	db := openDB(t)
	db.Exec(nil, partsDDL)
	tbl, _ := db.Table("parts")
	now := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	row := catalog.Tuple{catalog.NewInt(1), catalog.NewString("a"), catalog.NewInt(2), catalog.NewTime(now)}
	row2 := catalog.Tuple{catalog.NewInt(1), catalog.NewString("b"), catalog.NewInt(3), catalog.NewTime(now)}

	ins, err := DeltaSQL(extract.Delta{Kind: extract.KindInsert, After: row}, tbl)
	if err != nil || len(ins) != 1 || !strings.HasPrefix(ins[0], "INSERT INTO parts") {
		t.Fatalf("insert sql = %v, %v", ins, err)
	}
	del, err := DeltaSQL(extract.Delta{Kind: extract.KindDelete, Before: row}, tbl)
	if err != nil || len(del) != 1 || del[0] != "DELETE FROM parts WHERE part_id = 1" {
		t.Fatalf("delete sql = %v, %v", del, err)
	}
	upd, err := DeltaSQL(extract.Delta{Kind: extract.KindUpdate, Before: row, After: row2}, tbl)
	if err != nil || len(upd) != 2 {
		t.Fatalf("update sql = %v, %v", upd, err)
	}
	// Error paths.
	if _, err := DeltaSQL(extract.Delta{Kind: extract.KindInsert}, tbl); err == nil {
		t.Fatal("insert without image must fail")
	}
	if _, err := DeltaSQL(extract.Delta{Kind: extract.KindDelete}, tbl); err == nil {
		t.Fatal("delete without image must fail")
	}
	// Round-trip: generated SQL parses.
	for _, s := range append(append(ins, del...), upd...) {
		if _, err := sqlmini.Parse(s); err != nil {
			t.Fatalf("generated SQL does not parse: %q: %v", s, err)
		}
	}
}

func TestValueDeltaBatchAborts(t *testing.T) {
	db := openDB(t)
	db.Exec(nil, partsDDL)
	schema := partsSchema(t, db)
	w := replicaWarehouse(t, schema)
	now := time.Unix(0, 0)
	good := catalog.Tuple{catalog.NewInt(1), catalog.NewString("a"), catalog.NewInt(1), catalog.NewTime(now)}
	deltas := []extract.Delta{
		{Kind: extract.KindInsert, Table: "parts", After: good},
		{Kind: extract.KindInsert, Table: "parts", After: good}, // duplicate PK
	}
	if _, err := (&ValueDeltaIntegrator{W: w}).Apply(deltas); err == nil {
		t.Fatal("duplicate insert must fail the batch")
	}
	// The indivisible batch rolled back entirely.
	if rows := tableRows(t, w.DB, "parts"); len(rows) != 0 {
		t.Fatalf("batch not atomic: %v", rows)
	}
}

func TestViewRenameTransformation(t *testing.T) {
	// The warehouse view renames part_id -> sku and status -> state —
	// the paper's "transformation rules to directly apply the Op-Delta
	// to various schema in data warehouses".
	view := opdelta.ViewDef{
		Name: "catalog_items", Source: "parts",
		Project:  []string{"part_id", "status"},
		SourcePK: "part_id", SourceTS: "last_modified",
		Rename: map[string]string{"part_id": "sku", "status": "state"},
	}
	analyzer := opdelta.NewAnalyzer(view)
	src, _, oc, log := sourceWithCapture(t, analyzer)
	schema := partsSchema(t, src)

	w := New(openDB(t))
	v, err := w.RegisterView(view, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Schema.Column(0).Name != "sku" || v.Schema.Column(1).Name != "state" {
		t.Fatalf("view schema = %v", v.Schema)
	}

	oc.Exec(nil, `INSERT INTO parts (part_id, status, qty) VALUES (1, 'new', 5), (2, 'new', 6)`)
	oc.Exec(nil, `UPDATE parts SET status = 'live' WHERE part_id = 1`) // self-maintainable, renamed
	oc.Exec(nil, `DELETE FROM parts WHERE status = 'new'`)             // self-maintainable, renamed
	oc.Exec(nil, `DELETE FROM parts WHERE qty > 100`)                  // hybrid path (no matches)

	ops, _ := log.Read(0)
	if _, err := (&OpDeltaIntegrator{W: w}).Apply(ops); err != nil {
		t.Fatal(err)
	}
	_, rows, err := w.DB.Query(nil, `SELECT sku, state FROM catalog_items`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 1 || rows[0][1].Str() != "live" {
		t.Fatalf("renamed view rows = %v", rows)
	}
	// The renamed PK addresses rows for hybrid deletes too.
	hybridOps := []*opdelta.Op{{Seq: 99, Kind: opdelta.OpDelete, Table: "parts", Hybrid: true,
		Stmt:   `DELETE FROM parts WHERE qty = 5`,
		Before: []catalog.Tuple{mustRow(t, src, 1)}}}
	if _, err := (&OpDeltaIntegrator{W: w}).Apply(hybridOps); err != nil {
		t.Fatal(err)
	}
	_, rows, _ = w.DB.Query(nil, `SELECT sku FROM catalog_items`)
	if len(rows) != 0 {
		t.Fatalf("hybrid delete through rename failed: %v", rows)
	}
}

// mustRow fetches the full source row with the given part_id.
func mustRow(t *testing.T, db *engine.DB, id int64) catalog.Tuple {
	t.Helper()
	// The row may already be deleted at the source; synthesize the
	// image the capture would have recorded.
	return catalog.Tuple{
		catalog.NewInt(id), catalog.NewString("live"),
		catalog.NewInt(5), catalog.NewTime(time.Unix(0, 0)),
	}
}
