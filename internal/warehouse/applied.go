package warehouse

import (
	"fmt"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/keyset"
	"opdelta/internal/opdelta"
	"opdelta/internal/sqlmini"
)

// AppliedLogName is the warehouse table recording which op sequence
// numbers have been integrated.
const AppliedLogName = "opdelta__applied"

// AppliedLog makes integration idempotent under at-least-once delivery:
// one row per applied op, written inside the same warehouse transaction
// as the op's effects, so an op is recorded exactly when its effects
// are durable and a replayed op is detected and skipped.
//
// A high-watermark is NOT enough here: the parallel integrator commits
// key-disjoint transaction groups out of order, so "highest seq seen"
// can run ahead of unapplied ops and a crash between the two would lose
// them on replay. Per-op rows have no such gap.
//
// The log is scoped to one op stream — seqs from different sources
// collide, so a multi-source warehouse keeps one engine (and one
// AppliedLog) per source, as opdeltad -serve does.
type AppliedLog struct {
	W *Warehouse
}

func appliedLogSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "a_seq", Type: catalog.TypeInt64, NotNull: true},
	)
}

// EnsureAppliedLog creates (if needed) the applied-ops table and
// returns the log.
func EnsureAppliedLog(w *Warehouse) (*AppliedLog, error) {
	if _, err := w.DB.Table(AppliedLogName); err != nil {
		if _, err := w.DB.CreateTable(engine.TableDef{
			Name: AppliedLogName, Schema: appliedLogSchema(), PrimaryKey: "a_seq",
		}); err != nil {
			return nil, err
		}
	}
	return &AppliedLog{W: w}, nil
}

// Seen reports whether op seq was applied by a committed transaction.
// Run it inside the applying tx after its locks are held: the point
// read takes a shared range lock contained in the pre-declared
// exclusive range, so the answer cannot change before the tx decides.
func (a *AppliedLog) Seen(tx *engine.Tx, seq uint64) (bool, error) {
	found := false
	_, err := a.W.DB.IterateSelect(tx, &sqlmini.Select{
		Table: AppliedLogName,
		Where: &sqlmini.Binary{Op: sqlmini.OpEq,
			L: &sqlmini.ColRef{Name: "a_seq"},
			R: &sqlmini.Literal{Val: catalog.NewInt(int64(seq))}},
	}, func(catalog.Tuple) error {
		found = true
		return nil
	})
	return found, err
}

// Record marks the ops applied, inside tx. Commit the tx and the ops
// are durably deduplicated; abort and nothing was recorded — the
// all-or-nothing coupling the exactly-once argument rests on.
func (a *AppliedLog) Record(tx *engine.Tx, ops []*opdelta.Op) error {
	for _, op := range ops {
		row := catalog.Tuple{catalog.NewInt(int64(op.Seq))}
		if err := a.W.DB.InsertTuple(tx, AppliedLogName, row); err != nil {
			return fmt.Errorf("warehouse: recording applied op %d: %w", op.Seq, err)
		}
	}
	return nil
}

// MaxSeq returns the highest applied seq (0 when none) — the resume
// hint a replication server acks to shippers after a restart.
func (a *AppliedLog) MaxSeq() (uint64, error) {
	var max int64
	err := a.W.DB.ScanTable(nil, AppliedLogName, func(row catalog.Tuple) error {
		if s := row[0].Int(); s > max {
			max = s
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return uint64(max), nil
}

// ranges returns the point lock ranges covering ops' dedup rows, for
// pre-declaration alongside the group's data locks.
func (a *AppliedLog) ranges(ops []*opdelta.Op) []keyset.KeyRange {
	rs := make([]keyset.KeyRange, 0, len(ops))
	for _, op := range ops {
		rs = append(rs, keyset.Point(catalog.NewInt(int64(op.Seq))))
	}
	return keyset.MergeRanges(rs)
}
