package warehouse

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/keyset"
	"opdelta/internal/opdelta"
)

// ParallelIntegrator replays an op stream with source-transaction
// granularity like OpDeltaIntegrator with GroupByTxn, but dispatches
// independent source transactions onto a bounded worker pool. Two
// transactions are independent when their key footprints (see
// opdelta.StatementFootprint) are disjoint on every table; conflicting
// transactions are ordered by a dependency DAG so they retain source
// commit order, and anything the analysis cannot bound falls back to
// conflicting with everything — serial order, never wrong answers.
//
// Key-disjoint groups on the same table overlap end to end: each group
// pre-declares its computed footprint as exclusive key-range locks
// (plus whole-table locks for anything the analysis widened), so two
// workers writing different key ranges of one replica execute
// concurrently, not just pipeline their commits. The executor's own
// per-statement locks are contained in the pre-declared set and are
// granted without waiting, which keeps the schedule deadlock-free:
// groups block only during pre-declaration, where tables are taken in
// sorted name order and ranges in sorted bound order. On top of that,
// the WAL still group-commits the cohort's fsyncs.
type ParallelIntegrator struct {
	W *Warehouse
	// Workers bounds the apply pool. Values below 2 keep the scheduler
	// but run one transaction at a time.
	Workers int
	// TableLocks forces whole-table lock plans (the pre-range-lock
	// behavior): workers still pipeline commits, but same-table groups
	// serialize their apply phases. Benchmarks use it as the baseline
	// against key-range locking, and the equivalence sweep runs both.
	TableLocks bool
	// Applied, when set, makes Apply idempotent under at-least-once
	// redelivery: ops recorded in the AppliedLog are skipped, and each
	// group's survivors are recorded inside the group's own warehouse
	// transaction — effects and dedup row commit or roll back together.
	// The dedup rows take point range locks pre-declared with the rest
	// of the plan, so the deadlock-freedom argument is unchanged.
	Applied *AppliedLog

	mOnce sync.Once
	m     *applyMetrics
}

func (in *ParallelIntegrator) metrics() *applyMetrics {
	in.mOnce.Do(func() { in.m = newApplyMetrics(in.W.DB.Obs(), "parallel") })
	return in.m
}

// txnGroup is one source transaction's ops plus its conflict metadata.
type txnGroup struct {
	ops []*opdelta.Op
	// foot maps lower(source table) -> key footprint on that table.
	foot map[string]opdelta.Footprint
	// universal marks the serial fallback: the group conflicts with
	// every other group (unparseable op or undeterminable key set).
	universal bool
	// The lock plan, pre-declared before any op runs. lockOrder lists
	// every warehouse table the group may touch in canonical sorted
	// order; ranged maps the subset lockable as exclusive key ranges
	// (bounded footprints on tables whose maintenance is keyed by the
	// source PK) to their merged ranges, and the rest take whole-table
	// exclusive locks.
	lockOrder []string
	ranged    map[string][]keyset.KeyRange
}

func (g *txnGroup) conflictsWith(o *txnGroup) bool {
	if g.universal || o.universal {
		return true
	}
	for t, fg := range g.foot {
		if fo, ok := o.foot[t]; ok && fg.Overlaps(fo) {
			return true
		}
	}
	return false
}

// conflictKey resolves the schema and primary-key column used for
// footprint analysis of ops on a source table: the replica's PK when
// one exists, else any registered view's declared SourcePK.
func (w *Warehouse) conflictKey(table string) (*catalog.Schema, string) {
	if t, err := w.DB.Table(table); err == nil {
		if t.PKCol >= 0 {
			return t.Schema, t.Schema.Column(t.PKCol).Name
		}
		return t.Schema, ""
	}
	for _, v := range w.ViewsOn(table) {
		if v.Def.SourcePK != "" {
			return v.SrcSchema, v.Def.SourcePK
		}
	}
	return nil, ""
}

// analyze computes one group's footprints and lock plan.
func (in *ParallelIntegrator) analyze(ops []*opdelta.Op) *txnGroup {
	g := &txnGroup{ops: ops, foot: make(map[string]opdelta.Footprint)}
	lockSet := make(map[string]bool)
	// mustWhole marks tables whose maintenance is not keyed by the
	// source PK (agg views, join views and partners, PK-dropping views):
	// only a whole-table lock covers the statements run against them.
	// rangeSrc maps the remaining tables to the footprint key that
	// bounds them — the replica is bounded by its own footprint, and a
	// PK-retaining SP view by its source's (view rows are addressed by
	// the projected source PK, so the key values coincide).
	mustWhole := make(map[string]bool)
	rangeSrc := make(map[string]string)
	addFoot := func(table string, fp opdelta.Footprint) {
		key := strings.ToLower(table)
		g.foot[key] = g.foot[key].Union(fp)
	}
	for _, op := range ops {
		schema, pk := in.W.conflictKey(op.Table)
		fp := opdelta.WholeTable()
		stmt, err := op.Statement()
		if err != nil {
			g.universal = true
		} else {
			fp = opdelta.StatementFootprint(stmt, schema, pk)
		}
		if in.W.HasReplica(op.Table) {
			lockSet[op.Table] = true
			rangeSrc[op.Table] = strings.ToLower(op.Table)
		}
		for _, v := range in.W.ViewsOn(op.Table) {
			lockSet[v.Def.Name] = true
			switch {
			case v.Def.Join != nil:
				// Join maintenance probes the partner replica: the group
				// effectively reads arbitrary partner rows and patches
				// arbitrary view rows, so widen to whole-table on both
				// sides and lock the partner too.
				fp = opdelta.WholeTable()
				mustWhole[v.Def.Name] = true
				partner := v.Def.Join.Table
				if strings.EqualFold(partner, op.Table) {
					partner = v.Def.Source
				}
				addFoot(partner, opdelta.WholeTable())
				lockSet[partner] = true
				mustWhole[partner] = true
			case v.pkInView < 0:
				// A view that drops the source PK is maintained by
				// full-row-match deletes, which remove every duplicate —
				// rows other keys contributed. That is order-sensitive
				// across key-disjoint transactions, so widen to
				// whole-table and let the DAG serialize them.
				fp = opdelta.WholeTable()
				mustWhole[v.Def.Name] = true
			default:
				rangeSrc[v.Def.Name] = strings.ToLower(op.Table)
			}
		}
		for _, av := range in.W.AggViewsOn(op.Table) {
			// Agg view rows are keyed by group-by value, unrelated to the
			// source key set; concurrent groups serialize on the view's
			// table lock exactly as they did before range locking.
			lockSet[av.Def.Name] = true
			mustWhole[av.Def.Name] = true
		}
		addFoot(op.Table, fp)
	}
	g.ranged = make(map[string][]keyset.KeyRange)
	for t := range lockSet {
		g.lockOrder = append(g.lockOrder, t)
		if in.TableLocks || g.universal || mustWhole[t] {
			continue
		}
		src, ok := rangeSrc[t]
		if !ok {
			continue
		}
		fp := g.foot[src]
		if fp.Whole || len(fp.Ranges) == 0 {
			continue
		}
		g.ranged[t] = keyset.MergeRanges(fp.Ranges)
	}
	if in.Applied != nil {
		// The group's dedup rows are part of its write set: lock their
		// points alongside the data plan (whole-table when the group
		// already degraded to that).
		g.lockOrder = append(g.lockOrder, AppliedLogName)
		if !in.TableLocks && !g.universal {
			g.ranged[AppliedLogName] = in.Applied.ranges(ops)
		}
	}
	sort.Strings(g.lockOrder)
	m := in.metrics()
	if g.universal {
		m.degradedUniversal.Inc()
	} else if !in.TableLocks {
		// Whole-table locks chosen where key ranges were the goal are
		// precision the scheduler gave up; in TableLocks mode they are
		// the configured baseline, not a degradation.
		for _, t := range g.lockOrder {
			if _, ok := g.ranged[t]; !ok {
				m.degradedWholeTable.Inc()
			}
		}
	}
	return g
}

// Apply replays the ops, preserving source commit order between
// conflicting transactions. On the first error the remaining groups are
// abandoned (already-committed groups stay committed, exactly as with
// the serial integrator).
func (in *ParallelIntegrator) Apply(ops []*opdelta.Op) (ApplyStats, error) {
	start := time.Now()
	var groups []*txnGroup
	for i := 0; i < len(ops); {
		j := i + 1
		for j < len(ops) && ops[j].Txn == ops[i].Txn {
			j++
		}
		groups = append(groups, in.analyze(ops[i:j]))
		i = j
	}
	n := len(groups)
	var stats ApplyStats
	if n == 0 {
		stats.Duration = time.Since(start)
		return stats, nil
	}

	// Dependency DAG: group j waits for every earlier conflicting group.
	indeg := make([]int, n)
	rdeps := make([][]int, n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if groups[i].conflictsWith(groups[j]) {
				indeg[j]++
				rdeps[i] = append(rdeps[i], j)
			}
		}
	}

	workers := in.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	ready := make(chan int, n)
	abort := make(chan struct{})
	var abortOnce sync.Once
	cancel := func() { abortOnce.Do(func() { close(abort) }) }

	var mu sync.Mutex
	var firstErr error
	var panicVal any
	completed := 0
	for idx := 0; idx < n; idx++ {
		if indeg[idx] == 0 {
			ready <- idx
		}
	}

	ser := &OpDeltaIntegrator{W: in.W}
	m := in.metrics()
	runGroup := func(g *txnGroup) (err error) {
		var tx *engine.Tx
		committing := false
		defer func() {
			if r := recover(); r == nil {
				return
			} else {
				// Release the group's locks so peers fail fast instead of
				// timing out, then surface the panic value to the caller's
				// goroutine (the fault harness catches crash panics there).
				if tx != nil && !committing {
					func() { defer func() { recover() }(); tx.Abort() }()
				}
				mu.Lock()
				if panicVal == nil {
					panicVal = r
				}
				mu.Unlock()
				err = fmt.Errorf("warehouse: parallel apply panic: %v", r)
			}
		}()
		txStart := time.Now()
		tx = in.W.DB.Begin()
		// Pre-declare the lock plan in canonical table order; every lock
		// the executor takes while applying is contained in it.
		for _, name := range g.lockOrder {
			var lerr error
			if rs, ok := g.ranged[name]; ok {
				lerr = tx.LockRangesExclusive(name, rs)
			} else {
				lerr = tx.LockTablesExclusive(name)
			}
			if lerr != nil {
				tx.Abort()
				return lerr
			}
		}
		for _, op := range g.ops {
			op.Trace.Locked()
		}
		// Under at-least-once delivery a replayed op arrives with its
		// dedup row already committed; skip it (but still finish its
		// trace, so freshness tracking sees the redelivery resolve).
		live := g.ops
		if in.Applied != nil {
			live = live[:0:0]
			for _, op := range g.ops {
				seen, serr := in.Applied.Seen(tx, op.Seq)
				if serr != nil {
					tx.Abort()
					return serr
				}
				if seen {
					m.skippedDup.Inc()
					op.Trace.Applied()
					continue
				}
				live = append(live, op)
			}
		}
		recs, stmts := 0, 0
		for _, op := range live {
			c, aerr := ser.applyOne(tx, op)
			stmts += c
			if aerr != nil {
				tx.Abort()
				return fmt.Errorf("warehouse: op %d (%s): %w", op.Seq, op.Stmt, aerr)
			}
			op.Trace.Applied()
			recs++
		}
		if in.Applied != nil {
			if rerr := in.Applied.Record(tx, live); rerr != nil {
				tx.Abort()
				return rerr
			}
		}
		committing = true
		if cerr := tx.Commit(); cerr != nil {
			return cerr
		}
		for _, op := range g.ops {
			op.Trace.Durable()
			op.Trace.Done()
		}
		m.txns.Inc()
		m.records.Add(uint64(recs))
		m.statements.Add(uint64(stmts))
		m.txnSeconds.ObserveDuration(time.Since(txStart))
		mu.Lock()
		stats.Records += recs
		stats.Statements += stmts
		stats.Txns++
		mu.Unlock()
		return nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-abort:
					return
				case idx, ok := <-ready:
					if !ok {
						return
					}
					if err := runGroup(groups[idx]); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						cancel()
						return
					}
					mu.Lock()
					completed++
					if completed == n {
						close(ready)
					}
					for _, d := range rdeps[idx] {
						indeg[d]--
						if indeg[d] == 0 {
							ready <- d
						}
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	stats.Duration = time.Since(start)
	return stats, firstErr
}
