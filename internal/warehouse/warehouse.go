// Package warehouse implements the destination side of the pipeline: a
// warehouse database holding base-table replicas and materialized
// select-project(-join) views, plus the two integration strategies the
// paper compares —
//
//   - ValueDeltaIntegrator applies a differential file as one
//     indivisible batch transaction, one SQL statement per value-delta
//     record (updates become delete+insert pairs), holding the table
//     locks for the whole batch: the warehouse outage the paper
//     attributes to value-delta maintenance;
//   - OpDeltaIntegrator replays each captured operation as its own
//     small transaction, preserving source transaction boundaries so
//     maintenance interleaves with OLAP queries.
//
// Views are kept consistent through internal row-level triggers on the
// replica tables, so both integrators maintain them identically.
package warehouse

import (
	"fmt"
	"strings"
	"sync"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/opdelta"
	"opdelta/internal/sqlmini"
)

// Warehouse wraps the destination engine with view bookkeeping.
type Warehouse struct {
	DB *engine.DB

	mu       sync.RWMutex
	replicas map[string]bool       // lower(source) -> replica registered
	views    map[string][]*View    // lower(source table) -> dependent views
	aggs     map[string][]*AggView // lower(source table) -> dependent agg views
	all      []*View
}

// View is one registered materialized view.
type View struct {
	Def       opdelta.ViewDef
	SrcSchema *catalog.Schema
	Schema    *catalog.Schema // view table schema
	proj      []int           // source column indices retained (SP views)
	pkInView  int             // position of the source PK inside the view schema, -1 if dropped

	// join views
	JoinSchema *catalog.Schema
	projL      []int // retained columns of Def.Source
	projR      []int // retained columns of Def.Join.Table
}

// New creates a warehouse over db.
func New(db *engine.DB) *Warehouse {
	return &Warehouse{
		DB:       db,
		replicas: make(map[string]bool),
		views:    make(map[string][]*View),
		aggs:     make(map[string][]*AggView),
	}
}

// RegisterReplica creates a base-table replica with the same name and
// schema as the source table. Every op and value delta for that table
// is then applied to the replica, and dependent views follow via
// triggers.
func (w *Warehouse) RegisterReplica(source string, schema *catalog.Schema, primaryKey, tsCol string) error {
	key := strings.ToLower(source)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.replicas[key] {
		return fmt.Errorf("warehouse: replica of %s already registered", source)
	}
	if _, err := w.DB.Table(source); err != nil {
		if _, err := w.DB.CreateTable(engine.TableDef{
			Name: source, Schema: schema, PrimaryKey: primaryKey, TimestampCol: tsCol,
		}); err != nil {
			return err
		}
	}
	w.replicas[key] = true
	return nil
}

// HasReplica reports whether a replica of the source table exists.
func (w *Warehouse) HasReplica(source string) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.replicas[strings.ToLower(source)]
}

// ViewsOn returns the views that depend on a source table.
func (w *Warehouse) ViewsOn(source string) []*View {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.views[strings.ToLower(source)]
}

// AggViewsOn returns the aggregate views that depend on a source table.
func (w *Warehouse) AggViewsOn(source string) []*AggView {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.aggs[strings.ToLower(source)]
}

// Views returns every registered view.
func (w *Warehouse) Views() []*View {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]*View(nil), w.all...)
}

// RegisterView materializes a view. SP views need the source schema;
// join views additionally need the join partner's schema and replicas
// of both sources (registered beforehand), because incremental join
// maintenance probes the partner's state.
func (w *Warehouse) RegisterView(def opdelta.ViewDef, srcSchema, joinSchema *catalog.Schema) (*View, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	if def.Join != nil {
		return w.registerJoinView(def, srcSchema, joinSchema)
	}
	v := &View{Def: def, SrcSchema: srcSchema, pkInView: -1}
	projNames := def.Project
	if len(projNames) == 0 {
		projNames = nil
		for _, c := range srcSchema.Columns() {
			projNames = append(projNames, c.Name)
		}
	}
	cols := make([]catalog.Column, 0, len(projNames))
	for _, name := range projNames {
		i, ok := srcSchema.ColIndex(name)
		if !ok {
			return nil, fmt.Errorf("warehouse: view %s projects unknown column %q", def.Name, name)
		}
		v.proj = append(v.proj, i)
		col := srcSchema.Column(i)
		col.Name = def.RenameOf(col.Name) // transformation rule: rename
		cols = append(cols, col)
	}
	v.Schema = catalog.NewSchema(cols...)
	// Identify the source PK inside the view, if retained: per-row
	// maintenance addresses view rows by it. The definition may name it
	// explicitly; otherwise it is inferred from the replica table.
	pkName := def.SourcePK
	if pkName == "" {
		if inferred, err := w.sourcePKName(def.Source); err == nil {
			pkName = inferred
		}
	}
	viewPK := ""
	if pkName != "" {
		if i, ok := v.Schema.ColIndex(def.RenameOf(pkName)); ok {
			v.pkInView = i
			viewPK = def.RenameOf(pkName)
		}
	}
	if _, err := w.DB.CreateTable(engine.TableDef{Name: def.Name, Schema: v.Schema, PrimaryKey: viewPK}); err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.views[strings.ToLower(def.Source)] = append(w.views[strings.ToLower(def.Source)], v)
	w.all = append(w.all, v)
	hasReplica := w.replicas[strings.ToLower(def.Source)]
	w.mu.Unlock()
	if hasReplica {
		if err := w.installSPTrigger(v); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// sourcePKName returns the PK column name of a replica table at the
// warehouse, or an error when no replica exists.
func (w *Warehouse) sourcePKName(source string) (string, error) {
	t, err := w.DB.Table(source)
	if err != nil {
		return "", err
	}
	if t.PKCol < 0 {
		return "", nil
	}
	return t.Schema.Column(t.PKCol).Name, nil
}

// installSPTrigger keeps an SP view synchronized with its replica.
func (w *Warehouse) installSPTrigger(v *View) error {
	trig := engine.Trigger{
		Name: "view_" + v.Def.Name, OnInsert: true, OnDelete: true, OnUpdate: true,
		Fn: func(tx *engine.Tx, ev engine.TriggerEvent) error {
			switch ev.Op {
			case engine.TrigInsert:
				return w.viewInsert(tx, v, ev.After)
			case engine.TrigDelete:
				return w.viewDelete(tx, v, ev.Before)
			case engine.TrigUpdate:
				return w.viewUpdate(tx, v, ev.Before, ev.After)
			}
			return nil
		},
	}
	return w.DB.CreateTrigger(v.Def.Source, trig)
}

// matches evaluates the view's selection predicate on a full source row.
func (v *View) matches(row catalog.Tuple) (bool, error) {
	if v.Def.Where == nil {
		return true, nil
	}
	return sqlmini.EvalPredicate(v.Def.Where, v.SrcSchema, row)
}

// project maps a full source row to a view row.
func (v *View) project(row catalog.Tuple) catalog.Tuple {
	out := make(catalog.Tuple, len(v.proj))
	for i, p := range v.proj {
		out[i] = row[p]
	}
	return out
}

func (w *Warehouse) viewInsert(tx *engine.Tx, v *View, after catalog.Tuple) error {
	ok, err := v.matches(after)
	if err != nil || !ok {
		return err
	}
	return w.DB.InsertTuple(tx, v.Def.Name, v.project(after))
}

func (w *Warehouse) viewDelete(tx *engine.Tx, v *View, before catalog.Tuple) error {
	ok, err := v.matches(before)
	if err != nil || !ok {
		return err
	}
	return w.deleteViewRow(tx, v, v.project(before))
}

func (w *Warehouse) viewUpdate(tx *engine.Tx, v *View, before, after catalog.Tuple) error {
	inBefore, err := v.matches(before)
	if err != nil {
		return err
	}
	inAfter, err := v.matches(after)
	if err != nil {
		return err
	}
	switch {
	case inBefore && inAfter:
		if err := w.deleteViewRow(tx, v, v.project(before)); err != nil {
			return err
		}
		return w.DB.InsertTuple(tx, v.Def.Name, v.project(after))
	case inBefore:
		return w.deleteViewRow(tx, v, v.project(before))
	case inAfter:
		return w.DB.InsertTuple(tx, v.Def.Name, v.project(after))
	default:
		return nil
	}
}

// deleteViewRow removes one view row, by PK when the view retains it,
// otherwise by full-row match (deleting a single occurrence).
func (w *Warehouse) deleteViewRow(tx *engine.Tx, v *View, row catalog.Tuple) error {
	if v.pkInView >= 0 {
		del := &sqlmini.Delete{Table: v.Def.Name, Where: &sqlmini.Binary{
			Op: sqlmini.OpEq,
			L:  &sqlmini.ColRef{Name: v.Schema.Column(v.pkInView).Name},
			R:  &sqlmini.Literal{Val: row[v.pkInView]},
		}}
		_, err := w.DB.ExecStmt(tx, del)
		return err
	}
	// Full-row match: build an AND chain over all columns.
	var where sqlmini.Expr
	for i := 0; i < v.Schema.NumColumns(); i++ {
		var cmp sqlmini.Expr
		if row[i].IsNull() {
			cmp = &sqlmini.IsNull{Expr: &sqlmini.ColRef{Name: v.Schema.Column(i).Name}}
		} else {
			cmp = &sqlmini.Binary{Op: sqlmini.OpEq,
				L: &sqlmini.ColRef{Name: v.Schema.Column(i).Name},
				R: &sqlmini.Literal{Val: row[i]}}
		}
		if where == nil {
			where = cmp
		} else {
			where = &sqlmini.Binary{Op: sqlmini.OpAnd, L: where, R: cmp}
		}
	}
	_, err := w.DB.ExecStmt(tx, &sqlmini.Delete{Table: v.Def.Name, Where: where})
	return err
}
