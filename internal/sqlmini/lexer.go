package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString // 'quoted'
	tokHex    // X'...'
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"TIMESTAMP": true, "COLUMN": true, "NOT": true, "NULL": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "WHERE": true,
	"DELETE": true, "FROM": true, "SELECT": true,
	"AND": true, "OR": true, "IS": true, "BETWEEN": true,
	"TRUE": true, "FALSE": true,
	"GROUP": true, "BY": true, "ORDER": true, "LIMIT": true,
	"DESC": true, "ASC": true,
	"AS": true, "OF": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s, start)
		case (c == 'x' || c == 'X') && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'':
			l.pos++
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.emit(tokHex, s, start)
		case isIdentStart(c):
			l.lexWord(start)
		case c >= '0' && c <= '9':
			l.lexNumber(start, false)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' && l.lastAllowsNegative():
			l.pos++
			l.lexNumber(start, true)
		case c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber(start, false)
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			l.emit(tokSymbol, sym, start)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

// lastAllowsNegative reports whether a '-' here begins a negative number
// literal rather than a binary minus: true at the start or after a
// symbol or keyword (e.g. after '(', ',', '=', AND).
func (l *lexer) lastAllowsNegative() bool {
	if len(l.toks) == 0 {
		return true
	}
	last := l.toks[len(l.toks)-1]
	switch last.kind {
	case tokSymbol:
		return last.text != ")" // after ')' a '-' is subtraction
	case tokKeyword:
		return true
	default:
		return false
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.emit(tokKeyword, up, start)
	} else {
		l.emit(tokIdent, word, start)
	}
}

func (l *lexer) lexNumber(start int, negPrefixed bool) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.src) &&
			(l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-' || (l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9')):
			seenExp = true
			l.pos++
			if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString() (string, error) {
	// l.pos is at the opening quote.
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sqlmini: unterminated string literal at %d", l.pos)
}

func (l *lexer) lexSymbol() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			return "<>", nil
		}
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '*', '+', '-':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sqlmini: unexpected character %q at %d", c, l.pos)
}
