package sqlmini

import (
	"fmt"

	"opdelta/internal/catalog"
)

// Eval evaluates e against one row. Comparison with NULL yields NULL;
// AND/OR follow Kleene three-valued logic. Truth is decided by
// EvalPredicate, which maps NULL to false, matching SQL WHERE semantics.
func Eval(e Expr, schema *catalog.Schema, row catalog.Tuple) (catalog.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColRef:
		i, ok := schema.ColIndex(x.Name)
		if !ok {
			return catalog.Value{}, fmt.Errorf("sqlmini: unknown column %q", x.Name)
		}
		return row[i], nil
	case *IsNull:
		v, err := Eval(x.Expr, schema, row)
		if err != nil {
			return catalog.Value{}, err
		}
		return catalog.NewBool(v.IsNull() != x.Negate), nil
	case *Binary:
		return evalBinary(x, schema, row)
	default:
		return catalog.Value{}, fmt.Errorf("sqlmini: cannot evaluate %T", e)
	}
}

func evalBinary(x *Binary, schema *catalog.Schema, row catalog.Tuple) (catalog.Value, error) {
	// Kleene logic with short circuit where sound.
	if x.Op == OpAnd || x.Op == OpOr {
		l, err := Eval(x.L, schema, row)
		if err != nil {
			return catalog.Value{}, err
		}
		lt := truth(l)
		if x.Op == OpAnd && lt == tvFalse {
			return catalog.NewBool(false), nil
		}
		if x.Op == OpOr && lt == tvTrue {
			return catalog.NewBool(true), nil
		}
		r, err := Eval(x.R, schema, row)
		if err != nil {
			return catalog.Value{}, err
		}
		rt := truth(r)
		var out triVal
		if x.Op == OpAnd {
			out = andTV(lt, rt)
		} else {
			out = orTV(lt, rt)
		}
		if out == tvNull {
			return catalog.NewNull(catalog.TypeBool), nil
		}
		return catalog.NewBool(out == tvTrue), nil
	}

	l, err := Eval(x.L, schema, row)
	if err != nil {
		return catalog.Value{}, err
	}
	r, err := Eval(x.R, schema, row)
	if err != nil {
		return catalog.Value{}, err
	}
	switch x.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if l.IsNull() || r.IsNull() {
			return catalog.NewNull(catalog.TypeBool), nil
		}
		c, err := catalog.Compare(l, r)
		if err != nil {
			return catalog.Value{}, err
		}
		var b bool
		switch x.Op {
		case OpEq:
			b = c == 0
		case OpNe:
			b = c != 0
		case OpLt:
			b = c < 0
		case OpLe:
			b = c <= 0
		case OpGt:
			b = c > 0
		case OpGe:
			b = c >= 0
		}
		return catalog.NewBool(b), nil
	case OpAdd, OpSub, OpMul:
		return evalArith(x.Op, l, r)
	default:
		return catalog.Value{}, fmt.Errorf("sqlmini: unknown operator %v", x.Op)
	}
}

func evalArith(op BinOp, l, r catalog.Value) (catalog.Value, error) {
	if l.IsNull() || r.IsNull() {
		return catalog.NewNull(catalog.TypeInt64), nil
	}
	// String concatenation via + is supported for transformation rules.
	if op == OpAdd && l.Type() == catalog.TypeString && r.Type() == catalog.TypeString {
		return catalog.NewString(l.Str() + r.Str()), nil
	}
	lf, lInt, err := numeric(l)
	if err != nil {
		return catalog.Value{}, err
	}
	rf, rInt, err := numeric(r)
	if err != nil {
		return catalog.Value{}, err
	}
	if lInt && rInt {
		a, b := int64(lf), int64(rf)
		switch op {
		case OpAdd:
			return catalog.NewInt(a + b), nil
		case OpSub:
			return catalog.NewInt(a - b), nil
		case OpMul:
			return catalog.NewInt(a * b), nil
		}
	}
	switch op {
	case OpAdd:
		return catalog.NewFloat(lf + rf), nil
	case OpSub:
		return catalog.NewFloat(lf - rf), nil
	case OpMul:
		return catalog.NewFloat(lf * rf), nil
	}
	return catalog.Value{}, fmt.Errorf("sqlmini: bad arithmetic op")
}

func numeric(v catalog.Value) (f float64, isInt bool, err error) {
	switch v.Type() {
	case catalog.TypeInt64:
		return float64(v.Int()), true, nil
	case catalog.TypeFloat64:
		return v.Float(), false, nil
	default:
		return 0, false, fmt.Errorf("sqlmini: %s is not numeric", v.Type())
	}
}

type triVal uint8

const (
	tvFalse triVal = iota
	tvTrue
	tvNull
)

func truth(v catalog.Value) triVal {
	if v.IsNull() {
		return tvNull
	}
	if v.Type() == catalog.TypeBool && v.Bool() {
		return tvTrue
	}
	return tvFalse
}

func andTV(a, b triVal) triVal {
	switch {
	case a == tvFalse || b == tvFalse:
		return tvFalse
	case a == tvNull || b == tvNull:
		return tvNull
	default:
		return tvTrue
	}
}

func orTV(a, b triVal) triVal {
	switch {
	case a == tvTrue || b == tvTrue:
		return tvTrue
	case a == tvNull || b == tvNull:
		return tvNull
	default:
		return tvFalse
	}
}

// EvalPredicate evaluates e as a WHERE predicate: NULL and non-boolean
// results are false.
func EvalPredicate(e Expr, schema *catalog.Schema, row catalog.Tuple) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := Eval(e, schema, row)
	if err != nil {
		return false, err
	}
	return truth(v) == tvTrue, nil
}

// Columns returns the set of column names referenced anywhere in e.
// Self-maintainability analysis uses this to decide whether an Op-Delta
// statement touches view-relevant attributes.
func Columns(e Expr) map[string]bool {
	out := map[string]bool{}
	collectCols(e, out)
	return out
}

func collectCols(e Expr, out map[string]bool) {
	switch x := e.(type) {
	case *ColRef:
		out[x.Name] = true
	case *Binary:
		collectCols(x.L, out)
		collectCols(x.R, out)
	case *IsNull:
		collectCols(x.Expr, out)
	}
}
