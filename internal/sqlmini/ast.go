// Package sqlmini implements the engine's small SQL dialect: CREATE
// TABLE, INSERT, UPDATE, DELETE and SELECT with scalar expressions. The
// dialect matters beyond query execution: an Op-Delta *is* the statement
// text of an operation, so statements render back to canonical SQL
// (String methods) and the parser/printer pair round-trips.
package sqlmini

import (
	"fmt"
	"strings"

	"opdelta/internal/catalog"
)

// Statement is any parsed statement.
type Statement interface {
	stmtNode()
	// String renders the statement as canonical SQL re-parsable by this
	// package.
	String() string
}

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    catalog.Type
	NotNull bool
}

// CreateTable is CREATE TABLE name (cols...) [PRIMARY KEY (col)] [TIMESTAMP COLUMN (col)].
type CreateTable struct {
	Table        string
	Cols         []ColumnDef
	PrimaryKey   string // optional
	TimestampCol string // optional: engine-maintained last-modified column
}

// Insert is INSERT INTO t [(cols)] VALUES (row), (row), ...
type Insert struct {
	Table   string
	Columns []string // nil means full schema order
	Rows    [][]Expr
}

// Assign is one SET clause item.
type Assign struct {
	Col   string
	Value Expr
}

// Update is UPDATE t SET a=expr, ... [WHERE pred].
type Update struct {
	Table   string
	Assigns []Assign
	Where   Expr // nil means all rows
}

// Delete is DELETE FROM t [WHERE pred].
type Delete struct {
	Table string
	Where Expr
}

// AggFn is an aggregate function.
type AggFn uint8

// Aggregate functions.
const (
	AggInvalid AggFn = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// AggSpec is one aggregate in a select list. Col is empty for COUNT(*).
type AggSpec struct {
	Fn  AggFn
	Col string
}

// String renders the aggregate call.
func (a AggSpec) String() string {
	if a.Col == "" {
		return a.Fn.String() + "(*)"
	}
	return a.Fn.String() + "(" + a.Col + ")"
}

// Select is SELECT cols|*|aggs FROM t [WHERE pred] [GROUP BY col]
// [ORDER BY col [DESC]] [LIMIT n].
type Select struct {
	Table   string
	Columns []string // nil means * (when Aggregates is also empty)
	// Aggregates, when non-empty, makes this an aggregate query.
	// Columns may then only name the GroupBy column.
	Aggregates []AggSpec
	Where      Expr
	// GroupBy is the optional grouping column (aggregate queries only).
	GroupBy string
	// OrderBy is the optional ordering column (plain queries only).
	OrderBy string
	Desc    bool
	// Limit bounds the result rows; 0 means no limit.
	Limit int
	// AsOf, when non-zero, is a commit LSN for a time-travel read: the
	// statement runs against the committed state as of that LSN
	// (FROM t AS OF <lsn>). Only meaningful on autocommit SELECTs.
	AsOf uint64
}

func (*CreateTable) stmtNode() {}
func (*Insert) stmtNode()      {}
func (*Update) stmtNode()      {}
func (*Delete) stmtNode()      {}
func (*Select) stmtNode()      {}

// String renders canonical SQL.
func (s *CreateTable) String() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(s.Table)
	b.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteByte(')')
	if s.PrimaryKey != "" {
		b.WriteString(" PRIMARY KEY (")
		b.WriteString(s.PrimaryKey)
		b.WriteByte(')')
	}
	if s.TimestampCol != "" {
		b.WriteString(" TIMESTAMP COLUMN (")
		b.WriteString(s.TimestampCol)
		b.WriteByte(')')
	}
	return b.String()
}

func (s *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteByte(')')
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

func (s *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Assigns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Col)
		b.WriteString(" = ")
		b.WriteString(a.Value.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

func (s *Delete) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	var items []string
	items = append(items, s.Columns...)
	for _, a := range s.Aggregates {
		items = append(items, a.String())
	}
	if len(items) == 0 {
		b.WriteByte('*')
	} else {
		b.WriteString(strings.Join(items, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(s.Table)
	if s.AsOf > 0 {
		fmt.Fprintf(&b, " AS OF %d", s.AsOf)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if s.GroupBy != "" {
		b.WriteString(" GROUP BY ")
		b.WriteString(s.GroupBy)
	}
	if s.OrderBy != "" {
		b.WriteString(" ORDER BY ")
		b.WriteString(s.OrderBy)
		if s.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// BinOp is a binary operator.
type BinOp uint8

// Binary operators, comparison then logical then arithmetic.
const (
	OpInvalid BinOp = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	default:
		return "?"
	}
}

// Expr is any scalar expression.
type Expr interface {
	exprNode()
	String() string
}

// Literal is a constant value.
type Literal struct {
	Val catalog.Value
}

// ColRef references a column by name.
type ColRef struct {
	Name string
}

// Binary applies op to two subexpressions.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// IsNull tests a column or expression for NULL-ness (IS [NOT] NULL).
type IsNull struct {
	Expr   Expr
	Negate bool
}

func (*Literal) exprNode() {}
func (*ColRef) exprNode()  {}
func (*Binary) exprNode()  {}
func (*IsNull) exprNode()  {}

func (e *Literal) String() string { return e.Val.SQLLiteral() }
func (e *ColRef) String() string  { return e.Name }

func (e *Binary) String() string {
	l, r := e.L.String(), e.R.String()
	// Parenthesize nested binaries so the rendering is unambiguous
	// regardless of precedence.
	if _, ok := e.L.(*Binary); ok {
		l = "(" + l + ")"
	}
	if _, ok := e.R.(*Binary); ok {
		r = "(" + r + ")"
	}
	return l + " " + e.Op.String() + " " + r
}

func (e *IsNull) String() string {
	if e.Negate {
		return e.Expr.String() + " IS NOT NULL"
	}
	return e.Expr.String() + " IS NULL"
}
