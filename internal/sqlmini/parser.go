package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"opdelta/internal/catalog"
)

// Parse parses one statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input after statement")
	}
	return stmt, nil
}

// ParseExpr parses a standalone scalar expression (used by view
// definitions and tests).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errorf("expected %s, found %q", want, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlmini: %s (near offset %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src, 60))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.accept(tokKeyword, "CREATE"):
		return p.parseCreateTable()
	case p.accept(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.accept(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.accept(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.accept(tokKeyword, "SELECT"):
		return p.parseSelect()
	default:
		return nil, p.errorf("expected a statement keyword, found %q", p.cur().text)
	}
}

func (p *parser) parseIdent() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	stmt := &CreateTable{Table: name}
	for {
		colName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		// Type names lex as idents except TIMESTAMP which is a keyword.
		var typeName string
		if p.at(tokKeyword, "TIMESTAMP") {
			typeName = "TIMESTAMP"
			p.advance()
		} else {
			typeName, err = p.parseIdent()
			if err != nil {
				return nil, err
			}
		}
		typ, err := catalog.TypeFromName(strings.ToUpper(typeName))
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		col := ColumnDef{Name: colName, Type: typ}
		if p.accept(tokKeyword, "NOT") {
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			col.NotNull = true
		}
		stmt.Cols = append(stmt.Cols, col)
		if p.accept(tokSymbol, ",") {
			continue
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	for {
		switch {
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			pk, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			stmt.PrimaryKey = pk
		case p.accept(tokKeyword, "TIMESTAMP"):
			if _, err := p.expect(tokKeyword, "COLUMN"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			tc, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			stmt.TimestampCol = tc
		default:
			return stmt, nil
		}
	}
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &Insert{Table: table}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if p.accept(tokSymbol, ",") {
				continue
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	stmt := &Update{Table: table}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Assigns = append(stmt.Assigns, Assign{Col: col, Value: val})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &Delete{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// aggFns maps upper-cased aggregate names used in select lists.
var aggFns = map[string]AggFn{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parseSelect() (Statement, error) {
	stmt := &Select{}
	if p.accept(tokSymbol, "*") {
		// all columns
	} else {
		for {
			item, err := p.parseSelectItem(stmt)
			if err != nil {
				return nil, err
			}
			if item != "" {
				stmt.Columns = append(stmt.Columns, item)
			}
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if p.accept(tokKeyword, "AS") {
		if _, err := p.expect(tokKeyword, "OF"); err != nil {
			return nil, err
		}
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		lsn, err := strconv.ParseUint(t.text, 10, 64)
		if err != nil || lsn == 0 {
			return nil, p.errorf("bad AS OF LSN %q", t.text)
		}
		stmt.AsOf = lsn
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = col
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = col
		if p.accept(tokKeyword, "DESC") {
			stmt.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	if err := validateSelect(stmt); err != nil {
		return nil, p.errorf("%v", err)
	}
	return stmt, nil
}

// parseSelectItem parses either a column name or an aggregate call.
// Aggregates are recorded on stmt and "" is returned; plain columns are
// returned by name.
func (p *parser) parseSelectItem(stmt *Select) (string, error) {
	name, err := p.parseIdent()
	if err != nil {
		return "", err
	}
	fn, isAgg := aggFns[strings.ToUpper(name)]
	if !isAgg || !p.at(tokSymbol, "(") {
		return name, nil
	}
	p.advance() // consume '('
	spec := AggSpec{Fn: fn}
	if p.accept(tokSymbol, "*") {
		if fn != AggCount {
			return "", p.errorf("%s(*) is only valid for COUNT", fn)
		}
	} else {
		col, err := p.parseIdent()
		if err != nil {
			return "", err
		}
		spec.Col = col
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return "", err
	}
	stmt.Aggregates = append(stmt.Aggregates, spec)
	return "", nil
}

// validateSelect enforces the dialect's aggregate rules.
func validateSelect(s *Select) error {
	if len(s.Aggregates) > 0 {
		if s.OrderBy != "" {
			return fmt.Errorf("ORDER BY is not supported on aggregate queries")
		}
		for _, c := range s.Columns {
			if !strings.EqualFold(c, s.GroupBy) {
				return fmt.Errorf("column %q must appear in GROUP BY", c)
			}
		}
		if len(s.Columns) > 1 {
			return fmt.Errorf("at most one grouping column may be selected")
		}
	} else {
		if s.GroupBy != "" {
			return fmt.Errorf("GROUP BY requires aggregate functions")
		}
	}
	return nil
}

// Expression grammar (loosest to tightest):
//
//	expr    := andExpr (OR andExpr)*
//	andExpr := cmpExpr (AND cmpExpr)*
//	cmpExpr := addExpr ((=|<>|<|<=|>|>=) addExpr
//	          | BETWEEN addExpr AND addExpr
//	          | IS [NOT] NULL)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := primary (* primary)*
//	primary := literal | column | ( expr )
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.advance()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: left, R: right}, nil
		}
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		// Desugar to left >= lo AND left <= hi.
		return &Binary{Op: OpAnd,
			L: &Binary{Op: OpGe, L: left, R: lo},
			R: &Binary{Op: OpLe, L: left, R: hi}}, nil
	}
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Expr: left, Negate: neg}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := OpAdd
		if p.cur().text == "-" {
			op = OpSub
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokSymbol, "*") {
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpMul, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad float literal %q", t.text)
			}
			return &Literal{Val: catalog.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.text)
		}
		return &Literal{Val: catalog.NewInt(i)}, nil
	case t.kind == tokString:
		p.advance()
		return &Literal{Val: catalog.NewString(t.text)}, nil
	case t.kind == tokHex:
		p.advance()
		raw, err := decodeHex(t.text)
		if err != nil {
			return nil, p.errorf("bad hex literal: %v", err)
		}
		return &Literal{Val: catalog.NewBytes(raw)}, nil
	case t.kind == tokKeyword && t.text == "TIMESTAMP":
		p.advance()
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		ts, err := parseTimeLiteral(s.text)
		if err != nil {
			return nil, p.errorf("bad timestamp literal %q: %v", s.text, err)
		}
		return &Literal{Val: catalog.NewTime(ts)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.advance()
		return &Literal{Val: catalog.Value{}}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.advance()
		return &Literal{Val: catalog.NewBool(t.text == "TRUE")}, nil
	case t.kind == tokIdent:
		p.advance()
		return &ColRef{Name: t.text}, nil
	default:
		return nil, p.errorf("expected expression, found %q", t.text)
	}
}

// timeFormats are accepted timestamp literal layouts, most specific
// first. The paper's example "12/5/99" style is accepted for flavor.
var timeFormats = []string{
	time.RFC3339Nano,
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02",
	"1/2/06",
	"1/2/2006",
}

func parseTimeLiteral(s string) (time.Time, error) {
	for _, f := range timeFormats {
		if ts, err := time.Parse(f, s); err == nil {
			return ts, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized time format")
}

func decodeHex(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd-length hex string")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("invalid hex digit")
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
