package sqlmini

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"opdelta/internal/catalog"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE parts (
		part_id BIGINT NOT NULL,
		status VARCHAR,
		qty INT,
		weight DOUBLE,
		last_modified TIMESTAMP
	) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`)
	ct, ok := s.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Table != "parts" || len(ct.Cols) != 5 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Cols[0].NotNull || ct.Cols[0].Type != catalog.TypeInt64 {
		t.Errorf("col0 = %+v", ct.Cols[0])
	}
	if ct.Cols[4].Type != catalog.TypeTime {
		t.Errorf("col4 = %+v", ct.Cols[4])
	}
	if ct.PrimaryKey != "part_id" || ct.TimestampCol != "last_modified" {
		t.Errorf("pk=%q ts=%q", ct.PrimaryKey, ct.TimestampCol)
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, `INSERT INTO parts (part_id, status) VALUES (1, 'new'), (2, 'old')`)
	ins := s.(*Insert)
	if ins.Table != "parts" || len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("%+v", ins)
	}
	lit := ins.Rows[1][1].(*Literal)
	if lit.Val.Str() != "old" {
		t.Fatalf("row[1][1] = %v", lit.Val)
	}
	// Without a column list.
	s2 := mustParse(t, `INSERT INTO t VALUES (-5, 2.5, NULL, TRUE, X'deadbeef')`)
	ins2 := s2.(*Insert)
	if ins2.Columns != nil || len(ins2.Rows[0]) != 5 {
		t.Fatalf("%+v", ins2)
	}
	if v := ins2.Rows[0][0].(*Literal).Val; v.Int() != -5 {
		t.Errorf("negative literal = %v", v)
	}
	if v := ins2.Rows[0][2].(*Literal).Val; !v.IsNull() {
		t.Errorf("NULL literal = %v", v)
	}
	if v := ins2.Rows[0][4].(*Literal).Val; fmt.Sprintf("%x", v.BytesVal()) != "deadbeef" {
		t.Errorf("hex literal = %v", v)
	}
}

func TestParseUpdateDeleteSelect(t *testing.T) {
	// The paper's motivating statement.
	s := mustParse(t, `UPDATE PARTS SET status = 'revised' WHERE last_modified_date > TIMESTAMP '11/15/99'`)
	up := s.(*Update)
	if up.Table != "PARTS" || len(up.Assigns) != 1 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	b := up.Where.(*Binary)
	if b.Op != OpGt {
		t.Fatalf("where op = %v", b.Op)
	}
	ts := b.R.(*Literal).Val.Time()
	if ts.Year() != 1999 || ts.Month() != time.November || ts.Day() != 15 {
		t.Fatalf("timestamp literal = %v", ts)
	}

	d := mustParse(t, `DELETE FROM parts WHERE part_id BETWEEN 10 AND 20`).(*Delete)
	if d.Where == nil {
		t.Fatal("missing where")
	}
	sel := mustParse(t, `SELECT part_id, status FROM parts WHERE status <> 'dead' AND qty >= 3`).(*Select)
	if len(sel.Columns) != 2 {
		t.Fatalf("%+v", sel)
	}
	star := mustParse(t, `SELECT * FROM parts`).(*Select)
	if star.Columns != nil || star.Where != nil {
		t.Fatalf("%+v", star)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT FROM t",
		"INSERT INTO VALUES (1)",
		"UPDATE t SET",
		"DELETE t",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES (1",
		"SELECT * FROM t WHERE a = 'unterminated",
		"CREATE TABLE t (a WIDGET)",
		"SELECT * FROM t WHERE a ~ 1",
		"SELECT * FROM t extra",
		"INSERT INTO t VALUES (X'abc')", // odd hex
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundtrip(t *testing.T) {
	srcs := []string{
		`CREATE TABLE parts (part_id BIGINT NOT NULL, status VARCHAR) PRIMARY KEY (part_id)`,
		`INSERT INTO parts (part_id, status) VALUES (1, 'it''s'), (2, NULL)`,
		`UPDATE parts SET status = 'revised', qty = qty + 1 WHERE last_modified > TIMESTAMP '1999-11-15T00:00:00Z'`,
		`DELETE FROM parts WHERE (part_id >= 10) AND (part_id <= 20)`,
		`SELECT part_id, status FROM parts WHERE (status <> 'dead') OR (qty IS NOT NULL)`,
		`SELECT * FROM parts`,
	}
	for _, src := range srcs {
		s1 := mustParse(t, src)
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if s2.String() != printed {
			t.Errorf("not a fixpoint:\n 1st: %s\n 2nd: %s", printed, s2.String())
		}
	}
}

func evalSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "id", Type: catalog.TypeInt64, NotNull: true},
		catalog.Column{Name: "status", Type: catalog.TypeString},
		catalog.Column{Name: "qty", Type: catalog.TypeInt64},
		catalog.Column{Name: "weight", Type: catalog.TypeFloat64},
	)
}

func row(id int64, status string, qty int64, weight float64) catalog.Tuple {
	return catalog.Tuple{catalog.NewInt(id), catalog.NewString(status), catalog.NewInt(qty), catalog.NewFloat(weight)}
}

func TestEvalPredicates(t *testing.T) {
	s := evalSchema()
	r := row(7, "new", 3, 1.5)
	cases := []struct {
		src  string
		want bool
	}{
		{"id = 7", true},
		{"id <> 7", false},
		{"id < 10 AND status = 'new'", true},
		{"id > 10 OR qty >= 3", true},
		{"id BETWEEN 5 AND 9", true},
		{"id BETWEEN 8 AND 9", false},
		{"weight > 1", true},
		{"weight > 2", false},
		{"qty + 1 = 4", true},
		{"qty * 2 = 6", true},
		{"qty - 5 = -2", true},
		{"id = 3 + 4", true},
		{"status IS NULL", false},
		{"status IS NOT NULL", true},
		{"(id = 1 OR id = 7) AND qty = 3", true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.src, err)
		}
		got, err := EvalPredicate(e, s, r)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalNullSemantics(t *testing.T) {
	s := evalSchema()
	r := catalog.Tuple{catalog.NewInt(1), catalog.NewNull(catalog.TypeString), catalog.NewNull(catalog.TypeInt64), catalog.NewFloat(0)}
	// NULL comparisons are not true.
	for _, src := range []string{"status = 'x'", "status <> 'x'", "qty > 0", "qty = qty"} {
		e, _ := ParseExpr(src)
		got, err := EvalPredicate(e, s, r)
		if err != nil || got {
			t.Errorf("EvalPredicate(%q) = %v, %v; want false", src, got, err)
		}
	}
	// Kleene: FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
	e, _ := ParseExpr("id = 2 AND qty > 0")
	if got, _ := EvalPredicate(e, s, r); got {
		t.Error("FALSE AND NULL must be false")
	}
	e, _ = ParseExpr("id = 1 OR qty > 0")
	if got, _ := EvalPredicate(e, s, r); !got {
		t.Error("TRUE OR NULL must be true")
	}
	// NULL IS NULL.
	e, _ = ParseExpr("qty IS NULL")
	if got, _ := EvalPredicate(e, s, r); !got {
		t.Error("qty IS NULL must be true")
	}
	// Arithmetic with NULL propagates NULL -> predicate false.
	e, _ = ParseExpr("qty + 1 = 1")
	if got, _ := EvalPredicate(e, s, r); got {
		t.Error("NULL + 1 = 1 must not be true")
	}
}

func TestEvalErrors(t *testing.T) {
	s := evalSchema()
	r := row(1, "a", 1, 1)
	for _, src := range []string{"ghost = 1", "status + 1 = 2", "status > 5"} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if _, err := EvalPredicate(e, s, r); err == nil {
			t.Errorf("EvalPredicate(%q) should error", src)
		}
	}
}

func TestStringConcat(t *testing.T) {
	s := evalSchema()
	r := row(1, "ab", 1, 1)
	e, err := ParseExpr("status + '-suffix' = 'ab-suffix'")
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalPredicate(e, s, r)
	if err != nil || !got {
		t.Fatalf("concat predicate = %v, %v", got, err)
	}
}

func TestColumnsCollection(t *testing.T) {
	e, err := ParseExpr("(a = 1 OR b > 2) AND c IS NULL AND d + e = 3")
	if err != nil {
		t.Fatal(err)
	}
	got := Columns(e)
	for _, want := range []string{"a", "b", "c", "d", "e"} {
		if !got[want] {
			t.Errorf("Columns missing %q: %v", want, got)
		}
	}
	if len(got) != 5 {
		t.Errorf("Columns = %v", got)
	}
}

// randExpr builds a random predicate over the eval schema.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		// leaf comparison
		cols := []string{"id", "qty"}
		col := cols[r.Intn(len(cols))]
		ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			L:  &ColRef{Name: col},
			R:  &Literal{Val: catalog.NewInt(r.Int63n(20))},
		}
	}
	if r.Intn(5) == 0 {
		return &IsNull{Expr: &ColRef{Name: "status"}, Negate: r.Intn(2) == 0}
	}
	op := OpAnd
	if r.Intn(2) == 0 {
		op = OpOr
	}
	return &Binary{Op: op, L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
}

// TestQuickExprPrintParseEval: printing then reparsing an expression
// must evaluate identically on random rows.
func TestQuickExprPrintParseEval(t *testing.T) {
	s := evalSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e1 := randExpr(r, 3)
		e2, err := ParseExpr(e1.String())
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			tup := row(r.Int63n(20), "s", r.Int63n(20), r.Float64())
			if r.Intn(4) == 0 {
				tup[1] = catalog.NewNull(catalog.TypeString)
			}
			v1, err1 := EvalPredicate(e1, s, tup)
			v2, err2 := EvalPredicate(e2, s, tup)
			if (err1 == nil) != (err2 == nil) || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertRoundtrip: INSERT statements with random literals
// round-trip through String/Parse.
func TestQuickInsertRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nrows := 1 + r.Intn(3)
		rows := make([][]Expr, nrows)
		for i := range rows {
			rows[i] = []Expr{
				&Literal{Val: catalog.NewInt(r.Int63() - r.Int63())},
				&Literal{Val: catalog.NewString(randLitString(r))},
				&Literal{Val: catalog.NewFloat(float64(r.Intn(1000)) / 8)},
			}
		}
		in := &Insert{Table: "t", Rows: rows}
		printed := in.String()
		back, err := Parse(printed)
		if err != nil {
			return false
		}
		return back.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randLitString(r *rand.Rand) string {
	chars := "abcXYZ '0-_,()="
	var b strings.Builder
	n := r.Intn(20)
	for i := 0; i < n; i++ {
		b.WriteByte(chars[r.Intn(len(chars))])
	}
	return b.String()
}

func TestParseExprTrailing(t *testing.T) {
	if _, err := ParseExpr("a = 1 b"); err == nil {
		t.Fatal("trailing tokens must fail")
	}
}

func TestTimeLiteralFormats(t *testing.T) {
	for _, src := range []string{
		`TIMESTAMP '2024-05-06T07:08:09Z'`,
		`TIMESTAMP '2024-05-06 07:08:09'`,
		`TIMESTAMP '2024-05-06'`,
		`TIMESTAMP '12/5/99'`,
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		if _, ok := e.(*Literal); !ok {
			t.Errorf("ParseExpr(%q) = %T", src, e)
		}
	}
	if _, err := ParseExpr(`TIMESTAMP 'not a time'`); err == nil {
		t.Error("bad time literal must fail")
	}
}

// TestQuickSQLLiteralParserRoundtrip: every value's SQLLiteral rendering
// must parse back to an equal value — the property Op-Delta statement
// synthesis (DeltaSQL, capture re-emission) depends on.
func TestQuickSQLLiteralParserRoundtrip(t *testing.T) {
	gen := func(r *rand.Rand) catalog.Value {
		switch r.Intn(6) {
		case 0:
			return catalog.NewInt(r.Int63() - r.Int63())
		case 1:
			return catalog.NewFloat(float64(r.Int63n(1_000_000)) / 64)
		case 2:
			b := make([]byte, r.Intn(20))
			for i := range b {
				b[i] = byte(32 + r.Intn(95)) // printable, includes quotes
			}
			return catalog.NewString(string(b))
		case 3:
			raw := make([]byte, r.Intn(10))
			r.Read(raw)
			return catalog.NewBytes(raw)
		case 4:
			return catalog.NewTime(time.Unix(r.Int63n(4e9), r.Int63n(1e9)).UTC())
		default:
			return catalog.NewBool(r.Intn(2) == 0)
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := gen(r)
		e, err := ParseExpr(v.SQLLiteral())
		if err != nil {
			return false
		}
		lit, ok := e.(*Literal)
		if !ok {
			return false
		}
		return catalog.Equal(v, lit.Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
