package wal

import (
	"fmt"
	"testing"

	"opdelta/internal/fault"
)

// buildTornFixture writes nrec records into a single-segment log on a
// fresh SimFS and returns the filesystem, the raw segment bytes, and the
// byte offset where each record's frame starts (plus the end offset as a
// final entry).
func buildTornFixture(t *testing.T, nrec int) (*fault.SimFS, []byte, []int) {
	t.Helper()
	fs := fault.NewSimFS(1)
	w, err := Open("/wal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{0}
	var buf []byte
	for i := 0; i < nrec; i++ {
		r := &Record{Type: RecInsert, Txn: uint64(i + 1), Table: "parts",
			Page: uint32(i), Slot: uint16(i),
			After: []byte(fmt.Sprintf("after-image-%02d", i))}
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		buf = Frame(buf[:0], r)
		bounds = append(bounds, bounds[len(bounds)-1]+len(buf))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(SegmentPath("/wal", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != bounds[len(bounds)-1] {
		t.Fatalf("segment is %d bytes, frames account for %d", len(data), bounds[len(bounds)-1])
	}
	return fs, data, bounds
}

// tornDir writes seg as the only segment of a fresh log directory.
func tornDir(t *testing.T, seg []byte) *fault.SimFS {
	t.Helper()
	fs := fault.NewSimFS(2)
	if err := fs.MkdirAll("/wal", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(SegmentPath("/wal", 1), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestTornTailEveryByteOffset truncates the final record at every byte
// offset — from losing the whole record to losing its last byte — and
// requires that (a) the reader returns exactly the intact prefix with no
// error, and (b) Open recovers: it truncates the torn tail, resumes the
// LSN sequence, and the next append lands cleanly.
func TestTornTailEveryByteOffset(t *testing.T) {
	const nrec = 4
	_, data, bounds := buildTornFixture(t, nrec)
	lastStart, end := bounds[nrec-1], bounds[nrec]
	for cut := lastStart; cut < end; cut++ {
		fs := tornDir(t, data[:cut])

		recs, err := ReadAllFS(fs, "/wal")
		if err != nil {
			t.Fatalf("cut %d: reader must stop cleanly at a torn tail: %v", cut, err)
		}
		if len(recs) != nrec-1 {
			t.Fatalf("cut %d: read %d records, want the %d intact ones", cut, len(recs), nrec-1)
		}
		for i, r := range recs {
			if r.LSN != LSN(i+1) || r.Txn != uint64(i+1) {
				t.Fatalf("cut %d: record %d corrupted: %+v", cut, i, r)
			}
		}

		w, err := Open("/wal", Options{FS: fs})
		if err != nil {
			t.Fatalf("cut %d: recovery open: %v", cut, err)
		}
		if got := w.NextLSN(); got != LSN(nrec) {
			t.Fatalf("cut %d: resumed at LSN %d, want %d", cut, got, nrec)
		}
		lsn, err := w.Append(&Record{Type: RecCommit, Txn: 99})
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err = ReadAllFS(fs, "/wal")
		if err != nil {
			t.Fatalf("cut %d: re-read: %v", cut, err)
		}
		if len(recs) != nrec || recs[nrec-1].LSN != lsn || recs[nrec-1].Txn != 99 {
			t.Fatalf("cut %d: post-recovery log has %d records", cut, len(recs))
		}
	}
}

// TestCorruptFinalRecordEveryByte flips each byte of the final record in
// turn. Whatever the flipped byte hits — length field, CRC, or payload —
// the reader must surface only the intact prefix and recovery must
// truncate the bad tail.
func TestCorruptFinalRecordEveryByte(t *testing.T) {
	const nrec = 3
	_, data, bounds := buildTornFixture(t, nrec)
	lastStart, end := bounds[nrec-1], bounds[nrec]
	for off := lastStart; off < end; off++ {
		seg := append([]byte(nil), data...)
		seg[off] ^= 0xA5
		fs := tornDir(t, seg)

		recs, err := ReadAllFS(fs, "/wal")
		if err != nil {
			t.Fatalf("flip @%d: reader error on corrupt tail: %v", off, err)
		}
		if len(recs) != nrec-1 {
			t.Fatalf("flip @%d: read %d records, want %d", off, len(recs), nrec-1)
		}
		w, err := Open("/wal", Options{FS: fs})
		if err != nil {
			t.Fatalf("flip @%d: recovery open: %v", off, err)
		}
		if got := w.NextLSN(); got != LSN(nrec) {
			t.Fatalf("flip @%d: resumed at LSN %d, want %d", off, got, nrec)
		}
		w.Close()
	}
}

// TestCorruptMiddleRecordStopsThere documents the scan contract when
// corruption is *not* at the tail: the reader still stops at the first
// bad frame (it cannot resynchronize), surfacing only the prefix.
func TestCorruptMiddleRecordStopsThere(t *testing.T) {
	const nrec = 4
	_, data, bounds := buildTornFixture(t, nrec)
	seg := append([]byte(nil), data...)
	seg[bounds[1]+recHeaderLen] ^= 0xFF // corrupt record 2's payload
	fs := tornDir(t, seg)
	recs, err := ReadAllFS(fs, "/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("read %d records past mid-log corruption, want 1", len(recs))
	}
}

// TestOpenResumesPastEmptySegments is the LSN-resume regression: a crash
// can leave the newest segment empty or entirely torn (created at
// rotation, never filled with a durable record). Open must keep scanning
// backwards so the resumed LSN continues after the newest real record
// instead of colliding with it.
func TestOpenResumesPastEmptySegments(t *testing.T) {
	_, data, _ := buildTornFixture(t, 3) // segment 1 holds LSN 1..3
	for _, tail := range [][]byte{
		nil,          // newest segment empty
		{0x01},       // torn inside the frame header
		data[:7],     // torn mid-header of its first record
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, // absurd length, incomplete
	} {
		fs := tornDir(t, data)
		if err := fs.WriteFile(SegmentPath("/wal", 2), tail, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open("/wal", Options{FS: fs})
		if err != nil {
			t.Fatalf("tail %x: open: %v", tail, err)
		}
		if got := w.NextLSN(); got != 4 {
			t.Fatalf("tail %x: resumed at LSN %d, want 4 (newest segment holds no records)", tail, got)
		}
		lsn, err := w.Append(&Record{Type: RecCommit, Txn: 50})
		if err != nil || lsn != 4 {
			t.Fatalf("tail %x: append: lsn=%d err=%v", tail, lsn, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadAllFS(fs, "/wal")
		if err != nil {
			t.Fatalf("tail %x: read all: %v", tail, err)
		}
		if len(recs) != 4 || recs[3].LSN != 4 {
			t.Fatalf("tail %x: %d records after resume", tail, len(recs))
		}
	}
}
