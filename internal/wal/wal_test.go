package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestFrameUnframeRoundtrip(t *testing.T) {
	recs := []*Record{
		{Type: RecBegin, Txn: 1},
		{Type: RecCommit, Txn: 1},
		{Type: RecInsert, Txn: 2, Table: "parts", Page: 7, Slot: 3, After: []byte("after-image")},
		{Type: RecDelete, Txn: 2, Table: "parts", Page: 9, Slot: 0, Before: []byte("before")},
		{Type: RecUpdate, Txn: 3, Table: "orders", Page: 1, Slot: 2, NewPage: 8, NewSlot: 5,
			Before: []byte("old"), After: []byte("new")},
		{Type: RecCheckpoint},
		{Type: RecInsert, Txn: 4, Table: "", After: nil}, // empty edge cases
	}
	var buf []byte
	for i, r := range recs {
		r.LSN = LSN(i + 1)
		buf = Frame(buf, r)
	}
	pos := 0
	for i, want := range recs {
		got, n, err := Unframe(buf[pos:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		pos += n
		if got.Type != want.Type || got.Txn != want.Txn || got.Table != want.Table ||
			got.LSN != want.LSN || got.Page != want.Page || got.Slot != want.Slot ||
			got.NewPage != want.NewPage || got.NewSlot != want.NewSlot ||
			!bytes.Equal(got.Before, want.Before) || !bytes.Equal(got.After, want.After) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if pos != len(buf) {
		t.Fatalf("consumed %d of %d bytes", pos, len(buf))
	}
}

func TestUnframeDetectsCorruption(t *testing.T) {
	buf := Frame(nil, &Record{Type: RecInsert, Txn: 1, Table: "t", After: []byte("payload")})
	// Flip a payload byte: crc must catch it.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xff
	if _, _, err := Unframe(bad); !errors.Is(err, ErrTorn) {
		t.Fatalf("corrupt payload: err = %v, want ErrTorn", err)
	}
	// Truncations at every length must be torn, not panics.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Unframe(buf[:cut]); !errors.Is(err, ErrTorn) {
			t.Fatalf("truncation at %d: err = %v", cut, err)
		}
	}
}

func TestQuickFrameRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rec := &Record{
			Type:    RecType(1 + r.Intn(7)),
			Txn:     r.Uint64(),
			Table:   string(randASCII(r, r.Intn(30))),
			Page:    r.Uint32(),
			Slot:    uint16(r.Uint32()),
			NewPage: r.Uint32(),
			NewSlot: uint16(r.Uint32()),
		}
		if r.Intn(2) == 0 {
			rec.Before = randB(r, r.Intn(200))
		}
		if r.Intn(2) == 0 {
			rec.After = randB(r, r.Intn(200))
		}
		buf := Frame(nil, rec)
		got, n, err := Unframe(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.Type == rec.Type && got.Txn == rec.Txn && got.Table == rec.Table &&
			bytes.Equal(got.Before, rec.Before) && bytes.Equal(got.After, rec.After)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randB(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randASCII(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return b
}

func TestWriterAssignsMonotonicLSNs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(filepath.Join(dir, "wal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var last LSN
	for i := 0; i < 100; i++ {
		lsn, err := w.Append(&Record{Type: RecInsert, Txn: uint64(i), Table: "t", After: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= last {
			t.Fatalf("LSN %d not monotonic after %d", lsn, last)
		}
		last = lsn
	}
}

func TestWriterReaderRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := Open(dir, Options{SegmentSize: 4096}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := w.Append(&Record{Type: RecInsert, Txn: uint64(i), Table: "parts",
			After: bytes.Repeat([]byte{byte(i)}, 50)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Rotations == 0 {
		t.Fatal("expected segment rotations with a 4 KiB segment size")
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) || r.Txn != uint64(i) {
			t.Fatalf("record %d out of order: lsn=%d txn=%d", i, r.LSN, r.Txn)
		}
	}
}

func TestWriterResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(&Record{Type: RecInsert, Txn: 1, Table: "t", After: []byte("a")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w2.Append(&Record{Type: RecCommit, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("resumed LSN = %d, want 11", lsn)
	}
	w2.Close()
	recs, err := ReadAll(dir)
	if err != nil || len(recs) != 11 {
		t.Fatalf("ReadAll after resume: %d recs, %v", len(recs), err)
	}
}

func TestWriterTruncatesTornTailOnResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := Open(dir, Options{Sync: SyncFlush})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(&Record{Type: RecCommit, Txn: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Simulate a crash mid-write: append garbage to the segment.
	segs, _ := ListSegments(dir)
	path := SegmentPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0x00})
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.NextLSN(); got != 6 {
		t.Fatalf("NextLSN after torn tail = %d, want 6", got)
	}
	recs, err := ReadAll(dir)
	if err != nil || len(recs) != 5 {
		t.Fatalf("ReadAll = %d recs, %v", len(recs), err)
	}
}

func TestArchiveModeCopiesClosedSegments(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "wal")
	arch := filepath.Join(base, "archive")
	w, err := Open(dir, Options{SegmentSize: 2048, ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := w.Append(&Record{Type: RecInsert, Txn: uint64(i), Table: "t",
			After: bytes.Repeat([]byte("a"), 40)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil { // make sure the tail is archived too
		t.Fatal(err)
	}
	w.Close()
	archSegs, err := ListSegments(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(archSegs) == 0 {
		t.Fatal("no segments archived")
	}
	recs, err := ReadAll(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("archive holds %d records, want 200", len(recs))
	}
}

func TestRecycleKeepsArchive(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "wal")
	arch := filepath.Join(base, "archive")
	w, err := Open(dir, Options{SegmentSize: 2048, ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		w.Append(&Record{Type: RecInsert, Txn: uint64(i), Table: "t", After: bytes.Repeat([]byte("b"), 40)})
	}
	active := w.ActiveSegment()
	if active < 2 {
		t.Fatal("test needs multiple segments")
	}
	if err := w.Recycle(active); err != nil {
		t.Fatal(err)
	}
	liveSegs, _ := ListSegments(dir)
	if len(liveSegs) != 1 || liveSegs[0] != active {
		t.Fatalf("live segments after recycle = %v, want [%d]", liveSegs, active)
	}
	archSegs, _ := ListSegments(arch)
	if len(archSegs) != int(active-1) {
		t.Fatalf("archive segments = %v, want %d", archSegs, active-1)
	}
	w.Close()
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNone, SyncFlush, SyncFull} {
		dir := filepath.Join(t.TempDir(), "wal")
		w, err := Open(dir, Options{Sync: pol})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(&Record{Type: RecCommit, Txn: 1}); err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		st := w.Stats()
		switch pol {
		case SyncNone:
			if st.Flushes != 0 {
				t.Errorf("SyncNone flushed %d times", st.Flushes)
			}
		case SyncFlush:
			if st.Flushes == 0 || st.Syncs != 0 {
				t.Errorf("SyncFlush: %+v", st)
			}
		case SyncFull:
			if st.Syncs == 0 {
				t.Errorf("SyncFull did not fsync: %+v", st)
			}
		}
		w.Close()
	}
}

func TestReaderEmptyDir(t *testing.T) {
	recs, err := ReadAll(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || recs != nil {
		t.Fatalf("empty dir: %v, %v", recs, err)
	}
}
