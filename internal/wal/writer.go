package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"opdelta/internal/fault"
)

// SyncPolicy controls durability of commits.
type SyncPolicy uint8

// Durability levels. SyncFlush is the zero value and therefore the
// default.
const (
	// SyncFlush flushes to the OS on every commit. Survives process
	// crashes but not power loss. The default.
	SyncFlush SyncPolicy = iota
	// SyncNone leaves records in the process buffer until rotation or
	// close. Fastest; loses recent commits on a crash.
	SyncNone
	// SyncFull fsyncs on every commit, like a production OLTP system.
	SyncFull
)

// Options configures a Writer.
type Options struct {
	// SegmentSize is the byte threshold after which the active segment
	// is closed and a new one started. Default 16 MiB.
	SegmentSize int64
	// Sync is the commit durability policy. Default SyncFlush.
	Sync SyncPolicy
	// ArchiveDir, when non-empty, enables archive mode: closed segments
	// are copied there at rotation time (the paper's "archiving turned
	// on": redo logs are not recycled and continue to accumulate).
	ArchiveDir string
	// FS routes all file I/O; nil means the real filesystem. The
	// fault-injection harness substitutes a fault.SimFS here.
	FS fault.FS
}

const segSuffix = ".seg"

func segName(idx uint64) string { return fmt.Sprintf("wal-%08d%s", idx, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), segSuffix), 10, 64)
	return n, err == nil
}

// Writer appends framed records to segment files in a directory. It is
// safe for concurrent use.
type Writer struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	fs      fault.FS
	f       fault.File
	bw      *bufio.Writer
	segIdx  uint64
	segSize int64
	nextLSN LSN
	scratch []byte

	appended, flushes, syncsDone, rotations uint64
}

// Open creates or resumes the log in dir. When resuming, the next LSN
// continues after the highest LSN found in existing segments.
func Open(dir string, opts Options) (*Writer, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 16 << 20
	}
	fsys := fault.OrOS(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if opts.ArchiveDir != "" {
		if err := fsys.MkdirAll(opts.ArchiveDir, 0o755); err != nil {
			return nil, err
		}
	}
	w := &Writer{dir: dir, opts: opts, fs: fsys, nextLSN: 1}
	segs, err := ListSegmentsFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		// Resume after the last valid record in the log. LSNs increase
		// across segments, so the newest segment normally holds the max
		// — but a crash can leave the newest segment empty or entirely
		// torn (created, never synced), in which case we keep scanning
		// backwards so the resumed LSN sequence never collides with
		// records in older segments.
		last := segs[len(segs)-1]
		_, validLen, err := scanSegment(fsys, filepath.Join(dir, segName(last)))
		if err != nil {
			return nil, err
		}
		for i := len(segs) - 1; i >= 0; i-- {
			maxLSN, _, err := scanSegment(fsys, filepath.Join(dir, segName(segs[i])))
			if err != nil {
				return nil, err
			}
			if maxLSN > 0 {
				w.nextLSN = maxLSN + 1
				break
			}
		}
		// Truncate any torn tail of the newest segment.
		if err := fsys.Truncate(filepath.Join(dir, segName(last)), validLen); err != nil {
			return nil, err
		}
		w.segIdx = last
		f, err := fsys.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.segSize = validLen
		w.bw = bufio.NewWriterSize(f, 1<<16)
		return w, nil
	}
	if err := w.openSegmentLocked(1); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Writer) openSegmentLocked(idx uint64) error {
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segName(idx)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segIdx = idx
	w.segSize = 0
	return nil
}

// Append frames r, assigns it the next LSN (overwriting r.LSN), and
// buffers it. Commit/abort/checkpoint records additionally apply the
// durability policy. It returns the assigned LSN.
func (w *Writer) Append(r *Record) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("wal: writer closed")
	}
	r.LSN = w.nextLSN
	w.nextLSN++
	w.scratch = Frame(w.scratch[:0], r)
	if _, err := w.bw.Write(w.scratch); err != nil {
		return 0, err
	}
	w.appended++
	w.segSize += int64(len(w.scratch))
	if r.Type == RecCommit || r.Type == RecAbort || r.Type == RecCheckpoint {
		if err := w.applySyncLocked(); err != nil {
			return 0, err
		}
	}
	if w.segSize >= w.opts.SegmentSize {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return r.LSN, nil
}

func (w *Writer) applySyncLocked() error {
	switch w.opts.Sync {
	case SyncNone:
		return nil
	case SyncFlush:
		w.flushes++
		return w.bw.Flush()
	case SyncFull:
		w.flushes++
		if err := w.bw.Flush(); err != nil {
			return err
		}
		w.syncsDone++
		return w.f.Sync()
	default:
		return fmt.Errorf("wal: unknown sync policy %d", w.opts.Sync)
	}
}

// Flush pushes buffered records to the OS.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bw == nil {
		return nil
	}
	w.flushes++
	return w.bw.Flush()
}

// Sync flushes and fsyncs the active segment.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bw == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.syncsDone++
	return w.f.Sync()
}

func (w *Writer) rotateLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.rotations++
	closed := w.segIdx
	if w.opts.ArchiveDir != "" {
		src := filepath.Join(w.dir, segName(closed))
		dst := filepath.Join(w.opts.ArchiveDir, segName(closed))
		if err := copyFile(w.fs, src, dst); err != nil {
			return fmt.Errorf("wal: archive segment %d: %w", closed, err)
		}
	}
	return w.openSegmentLocked(closed + 1)
}

// Rotate closes the active segment (archiving it if enabled) and starts
// a new one, regardless of size. Extraction tests use this to make
// recent records visible to the archive reader.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateLocked()
}

// Recycle deletes closed segments with index < keepFrom from the live
// log directory. In archive mode they remain available in ArchiveDir.
// Callers must only recycle after a checkpoint has made the segments
// unnecessary for recovery.
func (w *Writer) Recycle(keepFrom uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := ListSegmentsFS(w.fs, w.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx < keepFrom && idx != w.segIdx {
			if err := w.fs.Remove(filepath.Join(w.dir, segName(idx))); err != nil {
				return err
			}
		}
	}
	return nil
}

// ActiveSegment returns the index of the segment currently appended to.
func (w *Writer) ActiveSegment() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segIdx
}

// NextLSN returns the LSN the next Append will assign.
func (w *Writer) NextLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Stats is a snapshot of writer counters.
type Stats struct {
	Appended, Flushes, Syncs, Rotations uint64
}

// Stats returns writer counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{Appended: w.appended, Flushes: w.flushes, Syncs: w.syncsDone, Rotations: w.rotations}
}

// Close flushes, syncs and closes the active segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	err := w.f.Close()
	w.f, w.bw = nil, nil
	return err
}

// ListSegments returns the segment indexes present in dir, ascending.
func ListSegments(dir string) ([]uint64, error) {
	return ListSegmentsFS(fault.OS, dir)
}

// ListSegmentsFS is ListSegments through an injectable filesystem.
func ListSegmentsFS(fsys fault.FS, dir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if idx, ok := parseSegName(e.Name()); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SegmentPath returns the path of segment idx inside dir.
func SegmentPath(dir string, idx uint64) string { return filepath.Join(dir, segName(idx)) }

// scanSegment returns the max LSN and the byte length of the valid
// prefix of the segment at path.
func scanSegment(fsys fault.FS, path string) (LSN, int64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var max LSN
	pos := 0
	for pos < len(data) {
		r, n, err := Unframe(data[pos:])
		if err != nil {
			break // torn tail
		}
		if r.LSN > max {
			max = r.LSN
		}
		pos += n
	}
	return max, int64(pos), nil
}

func copyFile(fsys fault.FS, src, dst string) error {
	in, err := fsys.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := fsys.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
