package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"opdelta/internal/fault"
	"opdelta/internal/obs"
)

// SyncPolicy controls durability of commits.
type SyncPolicy uint8

// Durability levels. SyncFlush is the zero value and therefore the
// default.
const (
	// SyncFlush flushes to the OS on every commit. Survives process
	// crashes but not power loss. The default.
	SyncFlush SyncPolicy = iota
	// SyncNone leaves records in the process buffer until rotation or
	// close. Fastest; loses recent commits on a crash.
	SyncNone
	// SyncFull fsyncs on every commit, like a production OLTP system.
	SyncFull
)

// Options configures a Writer.
type Options struct {
	// SegmentSize is the byte threshold after which the active segment
	// is closed and a new one started. Default 16 MiB.
	SegmentSize int64
	// Sync is the commit durability policy. Default SyncFlush.
	Sync SyncPolicy
	// ArchiveDir, when non-empty, enables archive mode: closed segments
	// are copied there at rotation time (the paper's "archiving turned
	// on": redo logs are not recycled and continue to accumulate).
	ArchiveDir string
	// FS routes all file I/O; nil means the real filesystem. The
	// fault-injection harness substitutes a fault.SimFS here.
	FS fault.FS
	// Obs receives the writer's metrics (wal_* counters, fsync latency
	// and group-commit cohort histograms). Nil selects a private
	// registry, keeping independent writers' counters isolated.
	Obs *obs.Registry
	// ObsLabels are base labels stamped on every wal_* series, e.g. a db
	// label when several engines share one registry.
	ObsLabels []obs.Label
}

const segSuffix = ".seg"

func segName(idx uint64) string { return fmt.Sprintf("wal-%08d%s", idx, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), segSuffix), 10, 64)
	return n, err == nil
}

// Writer appends framed records to segment files in a directory. It is
// safe for concurrent use.
type Writer struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	fs      fault.FS
	f       fault.File
	bw      *bufio.Writer
	segIdx  uint64
	segSize int64
	nextLSN LSN

	// Group-commit bookkeeping. lastLSN is the newest appended record;
	// flushedLSN / durableLSN are high-water marks of what has reached
	// the OS / the disk. syncing marks a group-commit leader whose fsync
	// is in flight with mu released; cohort members wait on syncCond.
	lastLSN    LSN
	flushedLSN LSN
	durableLSN LSN
	syncing    bool
	syncCond   *sync.Cond

	// Counters and histograms are obs registry series; incrementing an
	// atomic counter under w.mu adds no synchronization the append path
	// doesn't already pay. fsyncSeconds is observed with w.mu RELEASED
	// (the leader path) or held only as long as the fsync itself.
	appended, flushes, syncsDone, groupSyncs, rotations *obs.Counter
	fsyncSeconds                                        *obs.Histogram
	cohortSize                                          *obs.Histogram
}

func (w *Writer) initMetrics() {
	reg := w.opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ls := w.opts.ObsLabels
	w.appended = reg.Counter("wal_appends_total", ls...)
	w.flushes = reg.Counter("wal_flushes_total", ls...)
	w.syncsDone = reg.Counter("wal_syncs_total", ls...)
	w.groupSyncs = reg.Counter("wal_group_syncs_total", ls...)
	w.rotations = reg.Counter("wal_rotations_total", ls...)
	w.fsyncSeconds = reg.Histogram("wal_fsync_seconds", obs.DurationBuckets, ls...)
	w.cohortSize = reg.Histogram("wal_group_commit_cohort_records", obs.CountBuckets, ls...)
}

// timedSync fsyncs f and feeds the latency histogram. covered is the
// number of records this sync round makes durable — the group-commit
// cohort (1 means group commit bought nothing).
func (w *Writer) timedSync(f fault.File, covered LSN) error {
	start := time.Now()
	err := f.Sync()
	w.fsyncSeconds.ObserveDuration(time.Since(start))
	if covered > 0 {
		w.cohortSize.Observe(float64(covered))
	}
	return err
}

// Open creates or resumes the log in dir. When resuming, the next LSN
// continues after the highest LSN found in existing segments.
func Open(dir string, opts Options) (*Writer, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 16 << 20
	}
	fsys := fault.OrOS(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if opts.ArchiveDir != "" {
		if err := fsys.MkdirAll(opts.ArchiveDir, 0o755); err != nil {
			return nil, err
		}
	}
	w := &Writer{dir: dir, opts: opts, fs: fsys, nextLSN: 1}
	w.syncCond = sync.NewCond(&w.mu)
	w.initMetrics()
	segs, err := ListSegmentsFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		// Resume after the last valid record in the log. LSNs increase
		// across segments, so the newest segment normally holds the max
		// — but a crash can leave the newest segment empty or entirely
		// torn (created, never synced), in which case we keep scanning
		// backwards so the resumed LSN sequence never collides with
		// records in older segments.
		last := segs[len(segs)-1]
		_, validLen, err := scanSegment(fsys, filepath.Join(dir, segName(last)))
		if err != nil {
			return nil, err
		}
		for i := len(segs) - 1; i >= 0; i-- {
			maxLSN, _, err := scanSegment(fsys, filepath.Join(dir, segName(segs[i])))
			if err != nil {
				return nil, err
			}
			if maxLSN > 0 {
				w.nextLSN = maxLSN + 1
				break
			}
		}
		// Truncate any torn tail of the newest segment.
		if err := fsys.Truncate(filepath.Join(dir, segName(last)), validLen); err != nil {
			return nil, err
		}
		w.segIdx = last
		f, err := fsys.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.segSize = validLen
		w.bw = bufio.NewWriterSize(f, 1<<16)
		// Everything already in the segment files predates this writer's
		// buffer, so the durability marks start at the resumed position.
		w.lastLSN = w.nextLSN - 1
		w.flushedLSN = w.lastLSN
		w.durableLSN = w.lastLSN
		return w, nil
	}
	if err := w.openSegmentLocked(1); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Writer) openSegmentLocked(idx uint64) error {
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segName(idx)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segIdx = idx
	w.segSize = 0
	return nil
}

// framePool recycles per-call frame buffers so concurrent appenders can
// serialize records outside the writer mutex without allocating.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// Append frames r, assigns it the next LSN (overwriting r.LSN), and
// buffers it. Commit/abort/checkpoint records additionally apply the
// durability policy. It returns the assigned LSN.
func (w *Writer) Append(r *Record) (LSN, error) {
	return w.append(r, true)
}

// AppendBuffered frames r and assigns its LSN but does not apply the
// commit durability policy, even for commit/abort/checkpoint records.
// Callers pair it with WaitDurable: append the commit record, release
// transaction locks, then wait for durability — early lock release.
// Correctness rests on the single-log ordering invariant: a transaction
// that observed this one's writes appends its own commit record later,
// so its record becoming durable implies this one's already is.
func (w *Writer) AppendBuffered(r *Record) (LSN, error) {
	return w.append(r, false)
}

func (w *Writer) append(r *Record, inlineSync bool) (LSN, error) {
	// Frame outside the mutex: copying the before/after images is the
	// bulk of an append, and doing it under w.mu turns the log into the
	// bottleneck for parallel appliers. Only the LSN (assigned once
	// ordered, below) is stamped inside the critical section.
	bufp := framePool.Get().(*[]byte)
	frame := Frame((*bufp)[:0], r)
	*bufp = frame
	lsn, err := w.appendFramed(r, frame, inlineSync)
	framePool.Put(bufp)
	return lsn, err
}

func (w *Writer) appendFramed(r *Record, frame []byte, inlineSync bool) (LSN, error) {
	// Unlock via defer: the fault-injection filesystem aborts I/O by
	// panicking, and a mutex left locked by an unwinding appender would
	// wedge every other transaction in the process (the buffer stays in
	// the pool's lost set, which is harmless).
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeFramedLocked(r, frame, inlineSync)
}

func (w *Writer) writeFramedLocked(r *Record, frame []byte, inlineSync bool) (LSN, error) {
	if w.f == nil {
		return 0, fmt.Errorf("wal: writer closed")
	}
	r.LSN = w.nextLSN
	w.nextLSN++
	PatchLSN(frame, r.LSN)
	if _, err := w.bw.Write(frame); err != nil {
		return 0, err
	}
	w.appended.Inc()
	w.lastLSN = r.LSN
	w.segSize += int64(len(frame))
	if inlineSync && (r.Type == RecCommit || r.Type == RecAbort || r.Type == RecCheckpoint) {
		if err := w.applySyncLocked(); err != nil {
			return 0, err
		}
	}
	if w.segSize >= w.opts.SegmentSize {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return r.LSN, nil
}

func (w *Writer) noteFlushedLocked(lsn LSN) {
	if lsn > w.flushedLSN {
		w.flushedLSN = lsn
	}
}

func (w *Writer) noteDurableLocked(lsn LSN) {
	w.noteFlushedLocked(lsn)
	if lsn > w.durableLSN {
		w.durableLSN = lsn
	}
}

func (w *Writer) applySyncLocked() error {
	switch w.opts.Sync {
	case SyncNone:
		return nil
	case SyncFlush:
		w.flushes.Inc()
		if err := w.bw.Flush(); err != nil {
			return err
		}
		w.noteFlushedLocked(w.lastLSN)
		return nil
	case SyncFull:
		goal := w.lastLSN
		covered := goal - w.durableLSN
		w.flushes.Inc()
		if err := w.bw.Flush(); err != nil {
			return err
		}
		w.noteFlushedLocked(goal)
		w.syncsDone.Inc()
		if err := w.timedSync(w.f, covered); err != nil {
			return err
		}
		w.noteDurableLocked(goal)
		return nil
	default:
		return fmt.Errorf("wal: unknown sync policy %d", w.opts.Sync)
	}
}

// WaitDurable blocks until the record at lsn is as durable as the
// writer's policy promises: nothing for SyncNone, flushed to the OS for
// SyncFlush, fsynced for SyncFull. Concurrent callers form a cohort: the
// first becomes the leader and issues one flush+fsync covering every
// record appended so far, so N committers pay one fsync between them
// (group commit) instead of one each.
func (w *Writer) WaitDurable(lsn LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch w.opts.Sync {
	case SyncNone:
		return nil
	case SyncFlush:
		if w.flushedLSN >= lsn {
			return nil
		}
		if w.bw == nil {
			return fmt.Errorf("wal: writer closed")
		}
		w.flushes.Inc()
		if err := w.bw.Flush(); err != nil {
			return err
		}
		w.noteFlushedLocked(w.lastLSN)
		return nil
	default:
		return w.syncToLocked(lsn)
	}
}

// syncToLocked returns once every record with LSN <= target is fsynced.
// The caller holds w.mu. While a leader's fsync is in flight, w.mu is
// released so appenders keep filling the buffer for the next cohort and
// latecomers queue on syncCond.
func (w *Writer) syncToLocked(target LSN) error {
	for {
		if w.durableLSN >= target {
			return nil
		}
		if w.bw == nil {
			return fmt.Errorf("wal: writer closed")
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		// Lead one sync round for everything appended so far.
		goal := w.lastLSN
		covered := goal - w.durableLSN
		w.flushes.Inc()
		if err := w.bw.Flush(); err != nil {
			return err
		}
		w.noteFlushedLocked(goal)
		f := w.f
		w.syncing = true
		w.groupSyncs.Inc()
		err := func() error {
			w.mu.Unlock()
			// The deferred re-lock also runs when Sync panics (the
			// fault-injection crash path), so syncing can't stay stuck
			// and strand the cohort.
			defer func() {
				w.mu.Lock()
				w.syncing = false
				w.syncCond.Broadcast()
			}()
			return w.timedSync(f, covered)
		}()
		if err != nil {
			// A concurrent rotation can sync and close the segment under
			// the leader; its own fsync then fails, but durability already
			// covers the goal, so keep going.
			if w.durableLSN >= goal {
				continue
			}
			return err
		}
		w.syncsDone.Inc()
		w.noteDurableLocked(goal)
	}
}

// Flush pushes buffered records to the OS.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bw == nil {
		return nil
	}
	w.flushes.Inc()
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.noteFlushedLocked(w.lastLSN)
	return nil
}

// Sync flushes and fsyncs the active segment. When everything appended
// is already durable — the common case right after a group commit — it
// returns without touching the file, which keeps the buffer pool's
// log-before-page barrier cheap.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bw == nil {
		return nil
	}
	return w.syncToLocked(w.lastLSN)
}

func (w *Writer) rotateLocked() error {
	goal := w.lastLSN
	covered := goal - w.durableLSN
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.timedSync(w.f, covered); err != nil {
		return err
	}
	w.noteDurableLocked(goal)
	if err := w.f.Close(); err != nil {
		return err
	}
	w.rotations.Inc()
	closed := w.segIdx
	if w.opts.ArchiveDir != "" {
		src := filepath.Join(w.dir, segName(closed))
		dst := filepath.Join(w.opts.ArchiveDir, segName(closed))
		if err := copyFile(w.fs, src, dst); err != nil {
			return fmt.Errorf("wal: archive segment %d: %w", closed, err)
		}
	}
	return w.openSegmentLocked(closed + 1)
}

// Rotate closes the active segment (archiving it if enabled) and starts
// a new one, regardless of size. Extraction tests use this to make
// recent records visible to the archive reader.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateLocked()
}

// Recycle deletes closed segments with index < keepFrom from the live
// log directory. In archive mode they remain available in ArchiveDir.
// Callers must only recycle after a checkpoint has made the segments
// unnecessary for recovery.
func (w *Writer) Recycle(keepFrom uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := ListSegmentsFS(w.fs, w.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx < keepFrom && idx != w.segIdx {
			if err := w.fs.Remove(filepath.Join(w.dir, segName(idx))); err != nil {
				return err
			}
		}
	}
	return nil
}

// ActiveSegment returns the index of the segment currently appended to.
func (w *Writer) ActiveSegment() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segIdx
}

// NextLSN returns the LSN the next Append will assign.
func (w *Writer) NextLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// CommitVisibleLSN returns the newest LSN the writer's durability policy
// considers settled: the last appended record under SyncNone (nothing is
// ever promised beyond the process buffer), the OS-flushed high-water
// mark under SyncFlush, and the fsynced mark under SyncFull. Snapshot
// readers pin their read horizon here so a snapshot never observes a
// commit the policy could still lose — "last durable commit" means the
// same thing to a snapshot as it does to WaitDurable.
func (w *Writer) CommitVisibleLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch w.opts.Sync {
	case SyncNone:
		return w.lastLSN
	case SyncFlush:
		return w.flushedLSN
	default:
		return w.durableLSN
	}
}

// Stats is a snapshot of writer counters. GroupSyncs counts sync rounds
// led on behalf of a WaitDurable cohort; Syncs counts fsyncs issued, so
// Syncs well below the number of commits is group commit working.
type Stats struct {
	Appended, Flushes, Syncs, GroupSyncs, Rotations uint64
}

// Stats returns writer counters (read back from the obs registry
// series, so Stats and a /metrics scrape can never disagree).
func (w *Writer) Stats() Stats {
	return Stats{Appended: w.appended.Value(), Flushes: w.flushes.Value(), Syncs: w.syncsDone.Value(),
		GroupSyncs: w.groupSyncs.Value(), Rotations: w.rotations.Value()}
}

// Close flushes, syncs and closes the active segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.noteDurableLocked(w.lastLSN)
	err := w.f.Close()
	w.f, w.bw = nil, nil
	// Wake any cohort members so they observe the closed writer instead
	// of sleeping forever.
	w.syncCond.Broadcast()
	return err
}

// ListSegments returns the segment indexes present in dir, ascending.
func ListSegments(dir string) ([]uint64, error) {
	return ListSegmentsFS(fault.OS, dir)
}

// ListSegmentsFS is ListSegments through an injectable filesystem.
func ListSegmentsFS(fsys fault.FS, dir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if idx, ok := parseSegName(e.Name()); ok {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SegmentPath returns the path of segment idx inside dir.
func SegmentPath(dir string, idx uint64) string { return filepath.Join(dir, segName(idx)) }

// scanSegment returns the max LSN and the byte length of the valid
// prefix of the segment at path.
func scanSegment(fsys fault.FS, path string) (LSN, int64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var max LSN
	pos := 0
	for pos < len(data) {
		r, n, err := Unframe(data[pos:])
		if err != nil {
			break // torn tail
		}
		if r.LSN > max {
			max = r.LSN
		}
		pos += n
	}
	return max, int64(pos), nil
}

func copyFile(fsys fault.FS, src, dst string) error {
	in, err := fsys.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := fsys.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
