package wal

import (
	"sync"
	"testing"
)

func openTestWriter(t *testing.T, opts Options) (*Writer, string) {
	t.Helper()
	dir := t.TempDir()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, dir
}

// TestAppendBufferedDefersDurability checks that AppendBuffered skips
// the inline commit sync and WaitDurable supplies it.
func TestAppendBufferedDefersDurability(t *testing.T) {
	w, dir := openTestWriter(t, Options{Sync: SyncFull})
	lsn, err := w.AppendBuffered(&Record{Type: RecCommit, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Syncs; got != 0 {
		t.Fatalf("AppendBuffered issued %d fsyncs, want 0", got)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Syncs; got == 0 {
		t.Fatal("WaitDurable under SyncFull must fsync")
	}
	// Durability is idempotent and cheap the second time around.
	before := w.Stats().Syncs
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Syncs; got != before {
		t.Fatalf("redundant WaitDurable issued %d extra fsyncs", got-before)
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != lsn {
		t.Fatalf("log content wrong after WaitDurable: %+v", recs)
	}
}

// TestGroupCommitAmortizesSyncs drives many concurrent committers
// through AppendBuffered+WaitDurable and checks the leader batched
// them: far fewer fsyncs than commits.
func TestGroupCommitAmortizesSyncs(t *testing.T) {
	w, _ := openTestWriter(t, Options{Sync: SyncFull})
	const committers = 32
	const rounds = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, committers*rounds)
	var txn uint64
	var txnMu sync.Mutex
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				txnMu.Lock()
				txn++
				id := txn
				txnMu.Unlock()
				lsn, err := w.AppendBuffered(&Record{Type: RecCommit, Txn: id})
				if err == nil {
					err = w.WaitDurable(lsn)
				}
				errs <- err
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Appended != committers*rounds {
		t.Fatalf("appended %d records, want %d", st.Appended, committers*rounds)
	}
	if st.Syncs >= st.Appended {
		t.Fatalf("no grouping: %d fsyncs for %d commits", st.Syncs, st.Appended)
	}
	if st.GroupSyncs == 0 {
		t.Fatal("no group-commit rounds recorded")
	}
}

// TestWaitDurablePolicies checks the policy ladder: SyncNone waits for
// nothing, SyncFlush only flushes, and both report success.
func TestWaitDurablePolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncNone, SyncFlush} {
		w, _ := openTestWriter(t, Options{Sync: policy})
		lsn, err := w.AppendBuffered(&Record{Type: RecCommit, Txn: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		if st := w.Stats(); st.Syncs != 0 {
			t.Fatalf("policy %d issued %d fsyncs from WaitDurable", policy, st.Syncs)
		}
	}
}

// TestWaitDurableAcrossRotation makes sure durability already provided
// by a rotation (which flushes and fsyncs the closing segment) is
// recognized instead of re-synced or erroneously failed.
func TestWaitDurableAcrossRotation(t *testing.T) {
	w, dir := openTestWriter(t, Options{Sync: SyncFull, SegmentSize: 128})
	var last LSN
	for i := 0; i < 20; i++ {
		lsn, err := w.AppendBuffered(&Record{Type: RecInsert, Txn: 1, Table: "t",
			After: []byte("payload-payload-payload")})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if w.ActiveSegment() == 1 {
		t.Fatal("workload did not rotate; grow the payload")
	}
	if err := w.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("read %d records back, want 20", len(recs))
	}
}

// TestMixedInlineAndGroupCommit interleaves legacy Append (inline
// policy) with the buffered path under concurrency; both must end
// durable and LSN-dense.
func TestMixedInlineAndGroupCommit(t *testing.T) {
	w, dir := openTestWriter(t, Options{Sync: SyncFull})
	const n = 40
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				_, err := w.Append(&Record{Type: RecCommit, Txn: uint64(i + 1)})
				errs <- err
				return
			}
			lsn, err := w.AppendBuffered(&Record{Type: RecCommit, Txn: uint64(i + 1)})
			if err == nil {
				err = w.WaitDurable(lsn)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	seen := make(map[LSN]bool)
	for _, r := range recs {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
	}
	for lsn := LSN(1); lsn <= LSN(n); lsn++ {
		if !seen[lsn] {
			t.Fatalf("missing LSN %d", lsn)
		}
	}
}
