// Package wal implements the engine's write-ahead log: LSN-stamped
// physiological records, segment rotation, an archive mode that retains
// closed segments for delta extraction (the paper's "log based
// extraction" source), and a reader used by both crash recovery and the
// log-mining extractor.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// LSN is a log sequence number, strictly increasing across the log.
type LSN uint64

// RecType discriminates log record kinds.
type RecType uint8

// Log record kinds.
const (
	RecInvalid    RecType = iota
	RecBegin              // transaction start
	RecCommit             // transaction commit
	RecAbort              // transaction rollback completed
	RecInsert             // tuple inserted: After image at RID
	RecDelete             // tuple deleted: Before image was at RID
	RecUpdate             // tuple updated: Before at RID, After at NewRID
	RecCheckpoint         // all dirty pages flushed as of this LSN
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecUpdate:
		return "UPDATE"
	case RecCheckpoint:
		return "CHECKPOINT"
	default:
		return "INVALID"
	}
}

// Record is one physiological log record. Before/After carry encoded
// tuples (see catalog.EncodeTuple); the WAL does not interpret them,
// which mirrors how real log formats are opaque outside the engine —
// the property the paper calls out as a weakness of log-based
// extraction ("the semantics of what is stored in them is only known by
// the COTS software").
type Record struct {
	LSN     LSN
	Type    RecType
	Txn     uint64
	Table   string
	Page    uint32
	Slot    uint16
	NewPage uint32 // RecUpdate only: location of the after image
	NewSlot uint16
	Before  []byte
	After   []byte
}

const recHeaderLen = 8 // u32 payload length + u32 crc

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord serializes r (excluding the outer length+crc frame) into
// dst and returns it.
func appendPayload(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.LSN))
	dst = binary.LittleEndian.AppendUint64(dst, r.Txn)
	dst = binary.AppendUvarint(dst, uint64(len(r.Table)))
	dst = append(dst, r.Table...)
	dst = binary.LittleEndian.AppendUint32(dst, r.Page)
	dst = binary.LittleEndian.AppendUint16(dst, r.Slot)
	dst = binary.LittleEndian.AppendUint32(dst, r.NewPage)
	dst = binary.LittleEndian.AppendUint16(dst, r.NewSlot)
	dst = binary.AppendUvarint(dst, uint64(len(r.Before)))
	dst = append(dst, r.Before...)
	dst = binary.AppendUvarint(dst, uint64(len(r.After)))
	dst = append(dst, r.After...)
	return dst
}

// Frame serializes r with its length+crc frame appended to dst.
func Frame(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame placeholder
	dst = appendPayload(dst, r)
	payload := dst[start+recHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// PatchLSN rewrites the LSN field of a framed record in place and
// recomputes the frame checksum. The writer uses this to frame records
// outside its mutex (the expensive image copies) and stamp the LSN —
// which is only known once ordered — inside it. Layout dependency:
// the payload starts with [1B type][8B lsn].
func PatchLSN(frame []byte, lsn LSN) {
	payload := frame[recHeaderLen:]
	binary.LittleEndian.PutUint64(payload[1:9], uint64(lsn))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
}

// ErrTorn reports an incomplete or corrupt record at the log tail. A
// torn tail is expected after a crash; the reader stops there.
var ErrTorn = errors.New("wal: torn or corrupt record")

// Unframe decodes one framed record from the front of data, returning
// the record and bytes consumed. It returns ErrTorn when the frame is
// incomplete or fails its checksum.
func Unframe(data []byte) (*Record, int, error) {
	if len(data) < recHeaderLen {
		return nil, 0, ErrTorn
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if uint32(len(data)-recHeaderLen) < plen {
		return nil, 0, ErrTorn
	}
	payload := data[recHeaderLen : recHeaderLen+int(plen)]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, ErrTorn
	}
	r, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return r, recHeaderLen + int(plen), nil
}

func decodePayload(p []byte) (*Record, error) {
	r := &Record{}
	if len(p) < 1+8+8 {
		return nil, fmt.Errorf("wal: payload too short (%d bytes)", len(p))
	}
	r.Type = RecType(p[0])
	r.LSN = LSN(binary.LittleEndian.Uint64(p[1:9]))
	r.Txn = binary.LittleEndian.Uint64(p[9:17])
	pos := 17
	tl, n := binary.Uvarint(p[pos:])
	if n <= 0 || len(p)-pos-n < int(tl) {
		return nil, fmt.Errorf("wal: bad table name length")
	}
	pos += n
	r.Table = string(p[pos : pos+int(tl)])
	pos += int(tl)
	if len(p)-pos < 4+2+4+2 {
		return nil, fmt.Errorf("wal: payload truncated at RIDs")
	}
	r.Page = binary.LittleEndian.Uint32(p[pos:])
	pos += 4
	r.Slot = binary.LittleEndian.Uint16(p[pos:])
	pos += 2
	r.NewPage = binary.LittleEndian.Uint32(p[pos:])
	pos += 4
	r.NewSlot = binary.LittleEndian.Uint16(p[pos:])
	pos += 2
	var err error
	if r.Before, pos, err = readBlob(p, pos); err != nil {
		return nil, err
	}
	if r.After, pos, err = readBlob(p, pos); err != nil {
		return nil, err
	}
	if pos != len(p) {
		return nil, fmt.Errorf("wal: %d trailing bytes in payload", len(p)-pos)
	}
	return r, nil
}

func readBlob(p []byte, pos int) ([]byte, int, error) {
	l, n := binary.Uvarint(p[pos:])
	if n <= 0 || uint64(len(p)-pos-n) < l {
		return nil, 0, fmt.Errorf("wal: bad blob length")
	}
	pos += n
	if l == 0 {
		return nil, pos, nil
	}
	out := make([]byte, l)
	copy(out, p[pos:pos+int(l)])
	return out, pos + int(l), nil
}
