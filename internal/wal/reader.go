package wal

import (
	"errors"
	"path/filepath"

	"opdelta/internal/fault"
)

// Reader iterates records across the segments of a log directory in LSN
// order. It tolerates a torn tail in the final segment (stops there) but
// reports corruption elsewhere.
type Reader struct {
	fs      fault.FS
	dir     string
	segs    []uint64
	segPos  int
	data    []byte
	pos     int
	started bool
}

// NewReader opens a reader over all segments in dir.
func NewReader(dir string) (*Reader, error) {
	return NewReaderFS(fault.OS, dir)
}

// NewReaderFS is NewReader through an injectable filesystem.
func NewReaderFS(fsys fault.FS, dir string) (*Reader, error) {
	fsys = fault.OrOS(fsys)
	segs, err := ListSegmentsFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	return &Reader{fs: fsys, dir: dir, segs: segs}, nil
}

// ErrEnd reports that the log is exhausted.
var ErrEnd = errors.New("wal: end of log")

// Next returns the next record, or ErrEnd when the log is exhausted.
func (r *Reader) Next() (*Record, error) {
	for {
		if !r.started || r.pos >= len(r.data) {
			if r.segPos >= len(r.segs) {
				return nil, ErrEnd
			}
			data, err := r.fs.ReadFile(filepath.Join(r.dir, segName(r.segs[r.segPos])))
			if err != nil {
				return nil, err
			}
			r.data = data
			r.pos = 0
			r.segPos++
			r.started = true
			continue
		}
		rec, n, err := Unframe(r.data[r.pos:])
		if errors.Is(err, ErrTorn) {
			if r.segPos >= len(r.segs) {
				// Torn tail of the final segment: normal after a crash.
				return nil, ErrEnd
			}
			// Corruption in a non-final segment is real damage.
			return nil, err
		}
		if err != nil {
			return nil, err
		}
		r.pos += n
		return rec, nil
	}
}

// ReadAll collects every record in dir in LSN order. Convenience for
// tests and small logs; extraction streams with Next instead.
func ReadAll(dir string) ([]*Record, error) {
	return ReadAllFS(fault.OS, dir)
}

// ReadAllFS is ReadAll through an injectable filesystem.
func ReadAllFS(fsys fault.FS, dir string) ([]*Record, error) {
	rd, err := NewReaderFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	var out []*Record
	for {
		rec, err := rd.Next()
		if errors.Is(err, ErrEnd) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
