module opdelta

go 1.22
