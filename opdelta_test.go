package opdelta_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"opdelta"
)

// TestPublicAPIPipeline drives the whole system through the public
// facade only: source DDL, op capture with hybrid analysis, value
// capture, file shipping over a link and queue, and both integrators —
// the integration test a downstream user's first afternoon looks like.
func TestPublicAPIPipeline(t *testing.T) {
	work := t.TempDir()

	src, err := opdelta.Open(filepath.Join(work, "src"), opdelta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	const ddl = `CREATE TABLE parts (
		part_id BIGINT NOT NULL, status VARCHAR, qty BIGINT, last_modified TIMESTAMP
	) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`
	if _, err := src.Exec(nil, ddl); err != nil {
		t.Fatal(err)
	}

	// The warehouse will hold a slim projection view, so the analyzer
	// demands before images for qty-predicated statements.
	view := opdelta.ViewDef{
		Name: "slim_parts", Source: "parts",
		Project:  []string{"part_id", "status"},
		SourcePK: "part_id", SourceTS: "last_modified",
	}
	oplog, err := opdelta.NewTableLog(src)
	if err != nil {
		t.Fatal(err)
	}
	capture := &opdelta.Capture{DB: src, Log: oplog, Analyzer: opdelta.NewAnalyzer(view)}

	valueCap := &opdelta.TriggerCapture{DB: src, Table: "parts"}
	if err := valueCap.Install(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		stmt := fmt.Sprintf(`INSERT INTO parts (part_id, status, qty) VALUES (%d, 'new', %d)`, i, i*10)
		if _, err := capture.Exec(nil, stmt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := capture.Exec(nil, `UPDATE parts SET status = 'big' WHERE qty >= 150`); err != nil {
		t.Fatal(err)
	}
	if _, err := capture.Exec(nil, `DELETE FROM parts WHERE qty < 30`); err != nil {
		t.Fatal(err)
	}

	// Ship ops over a metered link into a persistent queue.
	table, err := src.Table("parts")
	if err != nil {
		t.Fatal(err)
	}
	ops, err := oplog.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 22 {
		t.Fatalf("ops = %d", len(ops))
	}
	queue, err := opdelta.OpenQueue(filepath.Join(work, "q"))
	if err != nil {
		t.Fatal(err)
	}
	defer queue.Close()
	link := &opdelta.Link{Latency: time.Microsecond, Sleep: func(time.Duration) {}}
	for _, op := range ops {
		enc, err := op.Encode(nil, table.Schema)
		if err != nil {
			t.Fatal(err)
		}
		link.Send(len(enc))
		if err := queue.Append(enc); err != nil {
			t.Fatal(err)
		}
	}
	if link.Stats().Messages != 22 {
		t.Fatalf("link messages = %d", link.Stats().Messages)
	}

	// Warehouse A: view-only deployment fed by ops from the queue.
	whA, err := opdelta.Open(filepath.Join(work, "whA"), opdelta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer whA.Close()
	wa := opdelta.NewWarehouse(whA)
	if _, err := wa.RegisterView(view, table.Schema, nil); err != nil {
		t.Fatal(err)
	}
	var shipped []*opdelta.Op
	for {
		msg, err := queue.Next()
		if err != nil {
			break
		}
		op, _, err := opdelta.DecodeOp(msg, table.Schema)
		if err != nil {
			t.Fatal(err)
		}
		shipped = append(shipped, op)
	}
	if err := queue.Ack(); err != nil {
		t.Fatal(err)
	}
	if _, err := (&opdelta.OpDeltaIntegrator{W: wa}).Apply(shipped); err != nil {
		t.Fatal(err)
	}
	_, viewRows, err := whA.Query(nil, `SELECT part_id, status FROM slim_parts`)
	if err != nil {
		t.Fatal(err)
	}
	if len(viewRows) != 17 { // 20 inserted - 3 deleted (qty < 30: ids 0,1,2)
		t.Fatalf("view rows = %d", len(viewRows))
	}
	big := 0
	for _, r := range viewRows {
		if r[1].Str() == "big" {
			big++
		}
	}
	if big != 5 { // qty >= 150: ids 15..19
		t.Fatalf("big rows = %d", big)
	}

	// Warehouse B: full replica fed by value deltas.
	var deltas opdelta.CollectSink
	if _, err := valueCap.Extract(&deltas); err != nil {
		t.Fatal(err)
	}
	whB, err := opdelta.Open(filepath.Join(work, "whB"), opdelta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer whB.Close()
	wb := opdelta.NewWarehouse(whB)
	if err := wb.RegisterReplica("parts", table.Schema, "part_id", "last_modified"); err != nil {
		t.Fatal(err)
	}
	if _, err := (&opdelta.ValueDeltaIntegrator{W: wb}).Apply(deltas.Deltas); err != nil {
		t.Fatal(err)
	}
	_, srcRows, _ := src.Query(nil, `SELECT * FROM parts`)
	_, whRows, _ := whB.Query(nil, `SELECT * FROM parts`)
	if len(srcRows) != len(whRows) || len(whRows) != 17 {
		t.Fatalf("replica rows = %d, source = %d", len(whRows), len(srcRows))
	}
}

// TestFacadeUtilities exercises the dump/load and snapshot surface of
// the public API.
func TestFacadeUtilities(t *testing.T) {
	work := t.TempDir()
	db, err := opdelta.Open(filepath.Join(work, "db"), opdelta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := opdelta.NewSchema(
		opdelta.Column{Name: "id", Type: opdelta.TypeInt64, NotNull: true},
		opdelta.Column{Name: "name", Type: opdelta.TypeString},
	)
	if _, err := db.CreateTable(opdelta.TableDef{Name: "t", Schema: schema, PrimaryKey: "id"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.InsertTuple(nil, "t", opdelta.Tuple{
			opdelta.NewInt(int64(i)), opdelta.NewString(fmt.Sprintf("n%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}

	exp := filepath.Join(work, "t.exp")
	if n, err := opdelta.Export(db, "t", exp); err != nil || n != 50 {
		t.Fatalf("export: %d, %v", n, err)
	}
	tsv := filepath.Join(work, "t.tsv")
	if n, err := opdelta.ASCIIDump(db, "t", tsv); err != nil || n != 50 {
		t.Fatalf("dump: %d, %v", n, err)
	}

	dst, err := opdelta.Open(filepath.Join(work, "dst"), opdelta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if _, err := dst.CreateTable(opdelta.TableDef{Name: "t", Schema: schema, PrimaryKey: "id"}); err != nil {
		t.Fatal(err)
	}
	if n, err := opdelta.Import(dst, "t", exp, opdelta.ImportOptions{}); err != nil || n != 50 {
		t.Fatalf("import: %d, %v", n, err)
	}

	// Snapshots through the facade.
	s1 := filepath.Join(work, "s1.snap")
	s2 := filepath.Join(work, "s2.snap")
	if _, err := opdelta.WriteSnapshot(db, "t", s1); err != nil {
		t.Fatal(err)
	}
	db.Exec(nil, `DELETE FROM t WHERE id = 7`)
	if _, err := opdelta.WriteSnapshot(db, "t", s2); err != nil {
		t.Fatal(err)
	}
	changes := 0
	if err := opdelta.DiffSortMerge(s1, s2, schema, 0, func(c opdelta.SnapshotChange) error {
		changes++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if changes != 1 {
		t.Fatalf("changes = %d", changes)
	}
}
