// Package opdelta is the public API of the Op-Delta reproduction: a
// from-scratch relational engine substrate, the four classical delta
// extraction methods (timestamps, differential snapshots, row-level
// triggers, log mining), the Op-Delta capture mechanism of Ram & Do
// (ICDE 2000), and a warehouse with value-delta and op-delta
// integrators.
//
// The package re-exports the stable surface of the internal packages so
// applications need a single import:
//
//	db, _ := opdelta.Open("data/src", opdelta.Options{})
//	db.Exec(nil, `CREATE TABLE parts (...) PRIMARY KEY (part_id)`)
//
//	log, _ := opdelta.NewTableLog(db)
//	capture := &opdelta.Capture{DB: db, Log: log}
//	capture.Exec(nil, `UPDATE parts SET status = 'revised' WHERE ...`)
//
//	wh := opdelta.NewWarehouse(whDB)
//	wh.RegisterReplica("parts", schema, "part_id", "last_modified")
//	ops, _ := log.Read(0)
//	(&opdelta.OpDeltaIntegrator{W: wh}).Apply(ops)
//
// See the examples directory for complete programs and DESIGN.md for
// the architecture.
package opdelta

import (
	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/extract"
	"opdelta/internal/loadutil"
	"opdelta/internal/opdelta"
	"opdelta/internal/snapdiff"
	"opdelta/internal/sqlmini"
	"opdelta/internal/transport"
	"opdelta/internal/wal"
	"opdelta/internal/warehouse"
)

// Engine substrate.
type (
	// DB is an engine instance: heap tables behind buffer pools, WAL
	// with optional archive mode, table locking, row triggers.
	DB = engine.DB
	// Options configures an engine instance.
	Options = engine.Options
	// TableDef describes a table created programmatically.
	TableDef = engine.TableDef
	// Table is one table's metadata and runtime structures.
	Table = engine.Table
	// Tx is one transaction.
	Tx = engine.Tx
	// Result reports statement effects.
	Result = engine.Result
	// Trigger is a named row-level trigger.
	Trigger = engine.Trigger
	// TriggerEvent is delivered to row-level triggers per affected row.
	TriggerEvent = engine.TriggerEvent
)

// Open opens (creating if necessary) a database directory, running
// crash recovery from its WAL.
func Open(dir string, opts Options) (*DB, error) { return engine.Open(dir, opts) }

// WAL durability policies for Options.WALSync.
const (
	// SyncFlush flushes the log to the OS on every commit (default).
	SyncFlush = wal.SyncFlush
	// SyncNone buffers the log in-process (fastest, least durable).
	SyncNone = wal.SyncNone
	// SyncFull fsyncs on every commit.
	SyncFull = wal.SyncFull
)

// Data model.
type (
	// Schema is an ordered column list.
	Schema = catalog.Schema
	// Column describes one attribute.
	Column = catalog.Column
	// Value is a dynamically typed SQL value.
	Value = catalog.Value
	// Tuple is one row.
	Tuple = catalog.Tuple
)

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return catalog.NewSchema(cols...) }

// Value constructors, re-exported from the catalog.
var (
	NewInt    = catalog.NewInt
	NewFloat  = catalog.NewFloat
	NewString = catalog.NewString
	NewBytes  = catalog.NewBytes
	NewTime   = catalog.NewTime
	NewBool   = catalog.NewBool
	NewNull   = catalog.NewNull
)

// Column types.
const (
	TypeInt64   = catalog.TypeInt64
	TypeFloat64 = catalog.TypeFloat64
	TypeString  = catalog.TypeString
	TypeBytes   = catalog.TypeBytes
	TypeTime    = catalog.TypeTime
	TypeBool    = catalog.TypeBool
)

// Value-delta extraction (the paper's §3 methods).
type (
	// Delta is one extracted value delta (before/after row images).
	Delta = extract.Delta
	// DeltaKind classifies a value delta.
	DeltaKind = extract.Kind
	// DeltaSink consumes extracted deltas.
	DeltaSink = extract.Sink
	// CollectSink gathers deltas in memory.
	CollectSink = extract.CollectSink
	// CountSink counts deltas and bytes.
	CountSink = extract.CountSink
	// FileSink streams deltas to an ASCII differential file.
	FileSink = extract.FileSink
	// TableSink writes deltas into a capture table.
	TableSink = extract.TableSink
	// RemoteTableSink writes deltas to another database over a link.
	RemoteTableSink = extract.RemoteTableSink
	// TimestampExtractor is the §3.1.1 method.
	TimestampExtractor = extract.TimestampExtractor
	// SnapshotExtractor is the §3.1.2 method.
	SnapshotExtractor = extract.SnapshotExtractor
	// TriggerCapture is the §3.1.3 method.
	TriggerCapture = extract.TriggerCapture
	// LogMiner is the §3.1.4 method.
	LogMiner = extract.LogMiner
)

// Delta kinds.
const (
	DeltaInsert = extract.KindInsert
	DeltaDelete = extract.KindDelete
	DeltaUpdate = extract.KindUpdate
	DeltaUpsert = extract.KindUpsert
)

// NewFileSink creates a differential file sink.
func NewFileSink(path string, schema *Schema) (*FileSink, error) {
	return extract.NewFileSink(path, schema)
}

// ReadDeltaFile parses a differential file written by a FileSink.
func ReadDeltaFile(path string, schema *Schema) ([]Delta, error) {
	return extract.ReadDeltaFile(path, schema)
}

// Op-Delta (the paper's §4 contribution).
type (
	// Op is one captured operation: the statement text plus source
	// transaction identity and, for hybrid captures, before images.
	Op = opdelta.Op
	// Capture wraps an engine and records every DML statement as an
	// Op-Delta right before submitting it.
	Capture = opdelta.Capture
	// OpLog stores captured ops.
	OpLog = opdelta.Log
	// TableLog keeps ops in a database table, transactionally.
	TableLog = opdelta.TableLog
	// FileLog appends committed ops to a flat file.
	FileLog = opdelta.FileLog
	// Analyzer classifies statements against view definitions for
	// hybrid (before-image) capture.
	Analyzer = opdelta.Analyzer
	// ViewDef describes a select-project-join view for the analyzer
	// and the warehouse.
	ViewDef = opdelta.ViewDef
	// JoinSpec is an equi-join with a second source table.
	JoinSpec = opdelta.JoinSpec
)

// NewTableLog creates (if needed) the op-log table in db.
func NewTableLog(db *DB) (*TableLog, error) { return opdelta.NewTableLog(db) }

// NewFileLog opens an op log file; schemaOf resolves schemas for hybrid
// before-image encoding (nil when hybrids are not used).
func NewFileLog(path string, schemaOf func(table string) (*Schema, error)) (*FileLog, error) {
	return opdelta.NewFileLog(path, schemaOf)
}

// NewAnalyzer builds a self-maintainability analyzer over views.
func NewAnalyzer(views ...ViewDef) *Analyzer { return opdelta.NewAnalyzer(views...) }

// Warehouse side.
type (
	// Warehouse wraps a destination engine with replica and view
	// bookkeeping.
	Warehouse = warehouse.Warehouse
	// ValueDeltaIntegrator applies differentials as one batch.
	ValueDeltaIntegrator = warehouse.ValueDeltaIntegrator
	// OpDeltaIntegrator replays ops as small transactions.
	OpDeltaIntegrator = warehouse.OpDeltaIntegrator
	// ApplyStats summarizes one integration run.
	ApplyStats = warehouse.ApplyStats
	// View is one registered materialized view.
	View = warehouse.View
	// AggViewDef describes an incrementally-maintained aggregate view.
	AggViewDef = warehouse.AggViewDef
	// AggView is one registered aggregate view.
	AggView = warehouse.AggView
)

// Aggregate functions for AggViewDef and ad-hoc aggregate queries.
type AggSpec = sqlmini.AggSpec

// Aggregate function identifiers.
const (
	AggCount = sqlmini.AggCount
	AggSum   = sqlmini.AggSum
	AggAvg   = sqlmini.AggAvg
	AggMin   = sqlmini.AggMin
	AggMax   = sqlmini.AggMax
)

// NewWarehouse creates a warehouse over db.
func NewWarehouse(db *DB) *Warehouse { return warehouse.New(db) }

// Dump/load utilities (the paper's Table 1 subjects).
var (
	// Export dumps a table in the engine's proprietary binary format.
	Export = loadutil.Export
	// ASCIIDump writes a table as tab-delimited text.
	ASCIIDump = loadutil.ASCIIDump
	// ASCIILoad bulk-loads tab-delimited text through the direct block
	// path, bypassing WAL and buffer pool.
	ASCIILoad = loadutil.ASCIILoad
)

// ImportOptions tunes the Import utility.
type ImportOptions = loadutil.ImportOptions

// Import loads an export file through the full engine insert path.
func Import(db *DB, table, path string, opts ImportOptions) (int64, error) {
	return loadutil.Import(db, table, path, opts)
}

// Snapshots and differentials (§3.1.2 internals, exposed for direct use).
type (
	// SnapshotChange is one difference between two snapshots.
	SnapshotChange = snapdiff.Change
)

var (
	// WriteSnapshot dumps a consistent table snapshot.
	WriteSnapshot = snapdiff.WriteSnapshot
	// DiffSortMerge computes an exact differential of key-sorted snapshots.
	DiffSortMerge = snapdiff.DiffSortMerge
	// DiffWindow computes a bounded-memory differential of unsorted
	// snapshots (Labio & Garcia-Molina's window algorithm).
	DiffWindow = snapdiff.DiffWindow
)

// Transport.
type (
	// Link simulates a network path with latency and bandwidth.
	Link = transport.Link
	// Queue is a file-backed at-least-once FIFO.
	Queue = transport.Queue
)

var (
	// LAN10Mb approximates the paper's 10 Mb/s switched LAN.
	LAN10Mb = transport.LAN10Mb
	// OpenQueue opens (or creates) a persistent queue.
	OpenQueue = transport.OpenQueue
	// ShipFile copies a file across a link.
	ShipFile = transport.ShipFile
)

// DecodeOp deserializes one op (see Op.Encode), returning bytes consumed.
func DecodeOp(data []byte, schema *Schema) (*Op, int, error) {
	return opdelta.DecodeOp(data, schema)
}

// ParseExpr parses a standalone scalar expression (for view selection
// predicates).
func ParseExpr(src string) (Expr, error) { return sqlmini.ParseExpr(src) }

// Expr is a scalar expression usable in view definitions.
type Expr = sqlmini.Expr

// CreateSecondaryIndex builds a non-unique ordered index on a column;
// range and equality predicates over it then use the index. The paper's
// timestamp extraction depends on exactly this ("table scans unless an
// index is defined on the time stamp attribute").
func CreateSecondaryIndex(db *DB, table, column string) error {
	return db.CreateSecondaryIndex(table, column)
}
