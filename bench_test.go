// Root benchmarks: one testing.B benchmark per paper table and figure
// (wrapping the internal/bench experiment runners, reporting the
// headline ratio of each artifact as a custom metric), plus
// micro-benchmarks of the core capture and integration paths.
//
//	go test -bench=. -benchmem
package opdelta_test

import (
	"fmt"
	"testing"

	"opdelta"
	"opdelta/internal/bench"
	"opdelta/internal/workload"
)

// experimentCfg keeps the table/figure wrappers at a per-iteration cost
// of a few seconds.
func experimentCfg(b *testing.B) bench.Config {
	b.Helper()
	return bench.Config{
		WorkDir:   b.TempDir(),
		TableRows: 20_000,
		DeltaRows: []int{5_000, 10_000, 20_000},
		TxnSizes:  []int{10, 100, 1000},
		Repeats:   3,
	}
}

// BenchmarkTable1 regenerates Table 1 (Export / Import / DBMS Loader)
// and reports the Import-to-Loader ratio at the largest delta.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable1(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		big := res.ColHeads[len(res.ColHeads)-1]
		b.ReportMetric(res.Get("Import", big)/res.Get("DBMS Loader", big), "import/loader")
	}
}

// BenchmarkTables2And3 regenerates Tables 2 and 3 (timestamp extraction
// output shapes and end-to-end paths) and reports the end-to-end
// table-path to file-path ratio.
func BenchmarkTables2And3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t3, err := bench.RunTables23(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		big := t3.ColHeads[len(t3.ColHeads)-1]
		b.ReportMetric(
			t3.Get("Time Stamp table output + Export + Import", big)/
				t3.Get("Time Stamp file output + DBMS Loader", big),
			"tablepath/filepath")
	}
}

// BenchmarkFigure2 regenerates Figure 2 (trigger overhead) and reports
// the insert overhead percentage at the largest transaction size.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure2(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		big := res.ColHeads[len(res.ColHeads)-1]
		b.ReportMetric(res.Get("Insert", big), "insert-overhead-%")
		b.ReportMetric(res.Get("Update", big), "update-overhead-%")
	}
}

// BenchmarkFigure3 regenerates Figure 3 (Op-Delta capture overhead).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure3(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		big := res.ColHeads[len(res.ColHeads)-1]
		b.ReportMetric(res.Get("Insert", big), "insert-overhead-%")
		b.ReportMetric(res.Get("Update", big), "update-overhead-%")
	}
}

// BenchmarkTable4 regenerates Table 4 (DB op log vs file op log) and
// reports the insert response-time ratio at the largest size.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable4(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		big := res.ColHeads[len(res.ColHeads)-1]
		b.ReportMetric(res.Get("Insert (DBLog)", big)/res.Get("Insert (FileLog)", big), "dblog/filelog")
	}
}

// BenchmarkMaintWindow regenerates the §4.1 maintenance-window
// comparison (E7) and reports the update-window ratio.
func BenchmarkMaintWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMaintWindow(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		big := res.ColHeads[len(res.ColHeads)-1]
		b.ReportMetric(res.Get("Update (ValueDelta)", big)/res.Get("Update (OpDelta)", big), "value/op-window")
	}
}

// BenchmarkRemoteCapture regenerates E8 and reports the remote/local
// capture cost ratio.
func BenchmarkRemoteCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunRemoteCapture(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Get("Ratio (x)", "txn response time"), "remote/local")
	}
}

// BenchmarkConcurrent regenerates E9 and reports the worst reader
// latency under each integrator.
func BenchmarkConcurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunConcurrent(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Get("ValueDelta batch", "max reader latency"), "value-maxlat-ms")
		b.ReportMetric(res.Get("OpDelta per-txn", "max reader latency"), "op-maxlat-ms")
	}
}

// BenchmarkVolume regenerates E10 and reports the value/op volume ratio
// for update transactions at the largest size.
func BenchmarkVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunVolume(experimentCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		big := res.ColHeads[len(res.ColHeads)-1]
		b.ReportMetric(res.Get("Update (ValueDelta)", big)/res.Get("Update (OpDelta)", big), "value/op-bytes")
	}
}

// --- Micro-benchmarks of the core paths -------------------------------

func newBenchSource(b *testing.B, rows int) *opdelta.DB {
	b.Helper()
	clock := workload.NewClock()
	db, err := opdelta.Open(b.TempDir(), opdelta.Options{Now: clock.Now})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if err := workload.CreateParts(db); err != nil {
		b.Fatal(err)
	}
	if err := workload.Populate(db, rows); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkEngineInsert measures the plain single-row insert path.
func BenchmarkEngineInsert(b *testing.B) {
	db := newBenchSource(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(nil, workload.SingleInsertStmt(int64(10_000+i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInsertWithTrigger measures the same insert with
// trigger-based value capture installed (Figure 2's instrumented path).
func BenchmarkEngineInsertWithTrigger(b *testing.B) {
	db := newBenchSource(b, 1000)
	cap := &opdelta.TriggerCapture{DB: db, Table: "parts"}
	if err := cap.Install(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(nil, workload.SingleInsertStmt(int64(10_000+i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInsertWithOpCapture measures the same insert with
// Op-Delta capture into a table log (Figure 3's instrumented path).
func BenchmarkEngineInsertWithOpCapture(b *testing.B) {
	db := newBenchSource(b, 1000)
	log, err := opdelta.NewTableLog(db)
	if err != nil {
		b.Fatal(err)
	}
	capture := &opdelta.Capture{DB: db, Log: log}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := capture.Exec(nil, workload.SingleInsertStmt(int64(10_000+i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeUpdate measures an indexed 100-row range update.
func BenchmarkRangeUpdate(b *testing.B) {
	db := newBenchSource(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first := int64((i * 100) % 19_000)
		if _, err := db.Exec(nil, workload.UpdateStmt(first, 100, fmt.Sprintf("m%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanQuery measures a full-scan predicate query over 20k rows.
func BenchmarkScanQuery(b *testing.B) {
	db := newBenchSource(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Query(nil, workload.ScanStatement()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotDiffSortMerge measures the exact snapshot diff over
// 20k-row snapshots.
func BenchmarkSnapshotDiffSortMerge(b *testing.B) {
	db := newBenchSource(b, 20_000)
	dir := b.TempDir()
	oldSnap := dir + "/old.snap"
	newSnap := dir + "/new.snap"
	if _, err := opdelta.WriteSnapshot(db, "parts", oldSnap); err != nil {
		b.Fatal(err)
	}
	db.Exec(nil, workload.UpdateStmt(0, 1000, "diffme"))
	if _, err := opdelta.WriteSnapshot(db, "parts", newSnap); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Table("parts")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := opdelta.DiffSortMerge(oldSnap, newSnap, tbl.Schema, 0, func(opdelta.SnapshotChange) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != 1000 {
			b.Fatalf("diff = %d changes", n)
		}
	}
}

// BenchmarkSnapshotDiffWindow measures the bounded-memory window diff
// on the same snapshots.
func BenchmarkSnapshotDiffWindow(b *testing.B) {
	db := newBenchSource(b, 20_000)
	dir := b.TempDir()
	oldSnap := dir + "/old.snap"
	newSnap := dir + "/new.snap"
	opdelta.WriteSnapshot(db, "parts", oldSnap)
	db.Exec(nil, workload.UpdateStmt(0, 1000, "diffme"))
	opdelta.WriteSnapshot(db, "parts", newSnap)
	tbl, _ := db.Table("parts")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := opdelta.DiffWindow(oldSnap, newSnap, tbl.Schema, 0, 256, func(opdelta.SnapshotChange) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
