// Command benchtables regenerates every table and figure from the
// paper's evaluation against this repository's engine, printing
// paper-shaped result tables.
//
// Usage:
//
//	benchtables [-e all|t1|t2|t3|f2|f3|t4|e7|e8|e9|e10] [-rows N] [-full] [-work DIR]
//
// The default scale finishes in well under a minute on a laptop; -full
// raises sizes toward the paper's (and takes correspondingly longer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"opdelta/internal/bench"
	"opdelta/internal/obs"
)

func main() {
	var (
		exp      = flag.String("e", "all", "experiment: all, t1, t2, t3, f2, f3, t4, e7, e8, e9, e10, a1..a5 (ablations)")
		rows     = flag.Int("rows", 0, "standing source-table rows (default 100000)")
		full     = flag.Bool("full", false, "paper-leaning scale: 1M-row table, deltas to 100MB, txns to 10k")
		work     = flag.String("work", "", "scratch directory (default: a temp dir, removed afterwards)")
		jsonPath = flag.String("json", "", "also write the results to this path as machine-readable JSON")
	)
	flag.Parse()

	// Every engine the experiments open publishes its metrics here under
	// a unique db label; -json dumps the snapshot alongside the grids.
	cfg := bench.Config{TableRows: *rows, Obs: obs.NewRegistry()}
	if *full {
		cfg.TableRows = 1_000_000
		cfg.DeltaRows = []int{100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000}
		cfg.TxnSizes = []int{10, 100, 1000, 10000}
	}
	if *work != "" {
		cfg.WorkDir = *work
	} else {
		dir, err := os.MkdirTemp("", "opdelta-bench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg.WorkDir = dir
	}

	type runner struct {
		ids []string
		fn  func(bench.Config) ([]*bench.Result, error)
	}
	runners := []runner{
		{[]string{"t1"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunTable1(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"t2", "t3"}, func(c bench.Config) ([]*bench.Result, error) {
			a, b, err := bench.RunTables23(c)
			return []*bench.Result{a, b}, err
		}},
		{[]string{"f2"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunFigure2(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"f3"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunFigure3(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"t4"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunTable4(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"e7"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunMaintWindow(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"e8"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunRemoteCapture(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"e9"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunConcurrent(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"e10"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunVolume(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"a1"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunHybridAblation(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"a2"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunImportPoolSweep(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"a3"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunSyncPolicyAblation(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"a4"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunSnapshotDiffAblation(c)
			return []*bench.Result{r}, err
		}},
		{[]string{"a5"}, func(c bench.Config) ([]*bench.Result, error) {
			r, err := bench.RunTimestampIndexAblation(c)
			return []*bench.Result{r}, err
		}},
	}

	want := strings.ToLower(*exp)
	ran := 0
	var collected []*bench.Result
	for _, r := range runners {
		// Ablations (a*) run only when named explicitly or with -e ablations.
		isAblation := strings.HasPrefix(r.ids[0], "a")
		match := (want == "all" && !isAblation) || (want == "ablations" && isAblation)
		for _, id := range r.ids {
			if id == want {
				match = true
			}
		}
		if !match {
			continue
		}
		start := time.Now()
		results, err := r.fn(cfg)
		if err != nil {
			fatal(err)
		}
		for _, res := range results {
			fmt.Println(res.Render())
		}
		collected = append(collected, results...)
		fmt.Printf("  (%s in %s)\n\n", strings.Join(r.ids, "+"), time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q (want all, ablations, t1, t2, t3, f2, f3, t4, e7..e10, a1..a4)", *exp))
	}
	if *jsonPath != "" {
		// The full registry holds one series set per scratch engine
		// (hundreds across a -e all run). Keep the dump reviewable:
		// pipeline-level series (delta_*, warehouse_*, ...) always, but
		// engine internals (wal_*, txn_*, storage_*) only for the E9
		// on-line maintenance engines — the experiment whose runtime
		// behavior the live /metrics endpoint mirrors — and drop
		// per-shard pool cells in favor of the pool-level gauges.
		snap := cfg.Obs.Snapshot().Filter(func(m *obs.Metric) bool {
			if m.Label("shard") != "" {
				return false
			}
			db := m.Label("db")
			return db == "" || strings.HasPrefix(db, "e9-")
		})
		if err := bench.WriteJSON(*jsonPath, collected, snap); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
