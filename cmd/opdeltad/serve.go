package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/obs"
	netrepl "opdelta/internal/transport/net"
	"opdelta/internal/wal"
	"opdelta/internal/warehouse"
)

// runServe is the warehouse side of networked replication: a netrepl
// server accepts N source shippers on a TCP listener, lands their op
// batches in per-source durable queue topics, and one applier per
// source drains its topic into a per-source warehouse through the
// parallel integrator with exactly-once apply (AppliedLog dedup).
//
// Each source stream gets its own warehouse directory under out/:
// sequence numbers — the dedup and resume key — are per source stream,
// so streams do not share an applied log.
//
// Shutdown is graceful on SIGINT/SIGTERM: the listener closes, active
// shippers get a SHUTDOWN frame, appliers drain and ack their final
// batches, and every warehouse commits durably before exit. A kill -9
// instead of a signal loses none of that: the topic queue and applied
// log are durable, so the next start resumes from the last acked LSN.
func runServe(listenAddr, outDir, metricsAddr string, duration time.Duration, d diagOpts) error {
	reg := obs.Default()
	tracer := obs.NewTracer(reg, 512)
	spans := newSpanTracer(reg, d)
	if metricsAddr != "" {
		if _, err := serveObs(metricsAddr, reg, tracer, spans, d.pprof); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	fmt.Printf("opdeltad: replication server listening on %s\n", lis.Addr())

	// Per-source state is created lazily and shared by two consumers
	// with different triggers: the server's Bootstrap callback needs the
	// bootstrapper when a bare replica's HELLO lands (before any applier
	// exists), and the applier manager needs the same warehouse and
	// bootstrapper when the topic appears. Whichever fires first builds
	// the state; the other reuses it.
	type sourceState struct {
		db       *engine.DB
		integ    *warehouse.ParallelIntegrator
		boot     *netrepl.Bootstrapper
		applying bool
	}
	states := make(map[string]*sourceState)
	var statesMu sync.Mutex
	ensureState := func(source string) (*sourceState, error) {
		statesMu.Lock()
		defer statesMu.Unlock()
		if st, ok := states[source]; ok {
			return st, nil
		}
		db, err := engine.Open(filepath.Join(outDir, "wh-"+source),
			engine.Options{Obs: reg, ObsDB: "wh-" + source, WALSync: wal.SyncFull})
		if err != nil {
			return nil, err
		}
		w := warehouse.New(db)
		if _, err := db.Table("parts"); err != nil {
			const ddl = `CREATE TABLE parts (
				part_id BIGINT NOT NULL, status VARCHAR, qty BIGINT, last_modified TIMESTAMP
			) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`
			if _, err := db.Exec(nil, ddl); err != nil {
				db.Close()
				return nil, err
			}
		}
		tbl, err := db.Table("parts")
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := w.RegisterReplica("parts", tbl.Schema, "part_id", "last_modified"); err != nil {
			db.Close()
			return nil, err
		}
		applied, err := warehouse.EnsureAppliedLog(w)
		if err != nil {
			db.Close()
			return nil, err
		}
		blog, err := warehouse.EnsureBootstrapLog(w)
		if err != nil {
			db.Close()
			return nil, err
		}
		st := &sourceState{
			db:    db,
			integ: &warehouse.ParallelIntegrator{W: w, Workers: 4, Applied: applied},
			boot:  &netrepl.Bootstrapper{Log: blog, Applied: applied, Source: source, Obs: reg, Spans: spans},
		}
		states[source] = st
		return st, nil
	}

	srv := netrepl.NewServer(netrepl.ServerConfig{
		Dir:   filepath.Join(outDir, "topics"),
		Obs:   reg,
		Spans: spans,
		Bootstrap: func(source string) (*netrepl.Bootstrapper, error) {
			st, err := ensureState(source)
			if err != nil {
				return nil, err
			}
			return st.boot, nil
		},
	})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Applier manager: every new source that opens a topic gets its own
	// warehouse and applier goroutine, wired to the source's
	// bootstrapper so snapshot chunks settle on the apply loop.
	startApplier := func(source string) error {
		st, err := ensureState(source)
		if err != nil {
			return err
		}
		statesMu.Lock()
		if st.applying {
			statesMu.Unlock()
			return nil
		}
		st.applying = true
		statesMu.Unlock()
		topic, err := srv.Topic(source)
		if err != nil {
			return err
		}
		db := st.db
		ap := &netrepl.Applier{
			Topic:      topic,
			Integrator: st.integ,
			SchemaOf: func(table string) (*catalog.Schema, error) {
				t, err := db.Table(table)
				if err != nil {
					return nil, err
				}
				return t.Schema, nil
			},
			Bootstrap: st.boot,
			Tracer:    tracer,
			Spans:     spans,
			Obs:       reg,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ap.Run(stop); err != nil {
				fail(fmt.Errorf("applier %s: %w", source, err))
			}
		}()
		fmt.Printf("opdeltad: applying source %q into %s\n", source, db.Dir())
		return nil
	}

	// Watch for new sources. Topics appear when a shipper's HELLO lands
	// (or existed on disk from a previous run — recover those first).
	entries, err := os.ReadDir(filepath.Join(outDir, "topics"))
	if err == nil {
		for _, e := range entries {
			if e.IsDir() {
				if err := startApplier(e.Name()); err != nil {
					return err
				}
			}
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			for _, source := range srv.Sources() {
				statesMu.Lock()
				st, known := states[source]
				running := known && st.applying
				statesMu.Unlock()
				if !running {
					if err := startApplier(source); err != nil {
						fail(err)
						return
					}
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	var timeout <-chan time.Time
	if duration > 0 {
		tm := time.NewTimer(duration)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case <-sig:
		fmt.Println("opdeltad: signal received, draining")
	case <-timeout:
	case err := <-serveDone:
		close(stop)
		wg.Wait()
		return err
	}

	// Drain: stop accepting, notify shippers, let appliers finish their
	// final batches, then close everything durably.
	lis.Close()
	close(stop)
	wg.Wait()
	if err := srv.Shutdown(); err != nil {
		fail(err)
	}
	<-serveDone
	statesMu.Lock()
	for source, st := range states {
		if err := st.db.Close(); err != nil {
			fail(fmt.Errorf("close %s: %w", source, err))
		}
	}
	n := len(states)
	statesMu.Unlock()
	fmt.Printf("opdeltad: replication server drained, %d source(s) closed\n", n)
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}
