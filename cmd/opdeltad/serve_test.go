package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/keyset"
	"opdelta/internal/obs"
	"opdelta/internal/opdelta"
	"opdelta/internal/warehouse"
)

// buildDaemon compiles the daemon binary once per test into its own
// temp dir (the go build cache makes repeats cheap).
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "opdeltad")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// proc wraps a daemon process whose stdout lines drive the test:
// resolved metrics/listen addresses are parsed from them and the drain
// summaries assert clean exits.
type proc struct {
	t    *testing.T
	name string
	cmd  *exec.Cmd
	out  chan string
	done chan error
}

func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{t: t, name: name, cmd: cmd, out: make(chan string, 256), done: make(chan error, 1)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case p.out <- sc.Text():
			default: // never block the child on a full channel
			}
		}
		p.done <- cmd.Wait()
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-p.done:
		case <-time.After(5 * time.Second):
		}
	})
	return p
}

// expectLine returns the next stdout line containing substr.
func (p *proc) expectLine(substr string, timeout time.Duration) string {
	p.t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line := <-p.out:
			if strings.Contains(line, substr) {
				return line
			}
		case err := <-p.done:
			p.t.Fatalf("%s exited (%v) before printing %q", p.name, err, substr)
		case <-deadline:
			p.t.Fatalf("%s: no line containing %q within %v", p.name, substr, timeout)
		}
	}
}

// metricsURL parses the resolved /metrics base URL the daemon prints
// as its first line when started with -metrics 127.0.0.1:0.
func (p *proc) metricsURL() string {
	p.t.Helper()
	line := p.expectLine("http://", 10*time.Second)
	i := strings.Index(line, "http://")
	return strings.TrimSuffix(strings.Fields(line[i:])[0], "/metrics")
}

func (p *proc) kill9() {
	p.t.Helper()
	p.cmd.Process.Kill()
	select {
	case <-p.done:
	case <-time.After(5 * time.Second):
		p.t.Fatalf("%s did not die after SIGKILL", p.name)
	}
}

// drain sends SIGTERM and requires a clean (exit 0) shutdown.
func (p *proc) drain(timeout time.Duration) {
	p.t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.done:
		if err != nil {
			p.t.Fatalf("%s: unclean exit after SIGTERM: %v", p.name, err)
		}
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		p.t.Fatalf("%s did not drain within %v of SIGTERM", p.name, timeout)
	}
}

func scrape(base string) ([]byte, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// waitMetric polls base until the named sample satisfies ok, returning
// the last scrape body.
func waitMetric(t *testing.T, base, name string, cond func(float64) bool, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var body []byte
	for time.Now().Before(deadline) {
		b, err := scrape(base)
		if err == nil {
			body = b
			if v, ok := sampleValue(b, name); ok && cond(v) {
				return b
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("metric %s never satisfied condition; last scrape:\n%s", name, body)
	return nil
}

// partsSnapshot reads the parts table as pk -> non-timestamp column
// values. The timestamp column is excluded because each engine stamps
// it with its own wall clock at execution time, so source and replica
// legitimately differ there. Duplicate primary keys fail the test —
// that is the visible symptom of a redelivered op applied twice.
func partsSnapshot(t *testing.T, db *engine.DB) map[string]string {
	t.Helper()
	tbl, err := db.Table("parts")
	if err != nil {
		t.Fatal(err)
	}
	pkIdx, _ := tbl.Schema.ColIndex("part_id")
	tsIdx, _ := tbl.Schema.ColIndex("last_modified")
	rows := make(map[string]string)
	err = db.ScanTable(nil, "parts", func(row catalog.Tuple) error {
		cols := make([]string, 0, len(row))
		for i, v := range row {
			if i == tsIdx {
				continue
			}
			cols = append(cols, fmt.Sprint(v))
		}
		key := fmt.Sprint(row[pkIdx])
		if _, dup := rows[key]; dup {
			t.Errorf("duplicate primary key %s in replica", key)
		}
		rows[key] = strings.Join(cols, "|")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// verifyReplica proves the exactly-once contract after both processes
// have exited: the warehouse's applied log must cover at least the seq
// the shipper reported acked, and the replica's rows must equal an
// in-process replay of the source op log truncated at exactly that
// applied seq — any lost op, duplicate apply, or reordering shows up
// as a row difference.
func verifyReplica(t *testing.T, srcDir, whDir string, ackedReported uint64) {
	t.Helper()

	wh, err := engine.Open(whDir, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	applied, err := warehouse.EnsureAppliedLog(warehouse.New(wh))
	if err != nil {
		t.Fatal(err)
	}
	maxApplied, err := applied.MaxSeq()
	if err != nil {
		t.Fatal(err)
	}
	// The server acks enqueue durability; apply catches up by drain time.
	if maxApplied < ackedReported {
		t.Fatalf("warehouse applied through seq %d < shipper-acked seq %d", maxApplied, ackedReported)
	}
	got := partsSnapshot(t, wh)

	src, err := engine.Open(srcDir, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	oplog, err := opdelta.NewTableLog(src)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := oplog.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	srcTbl, err := src.Table("parts")
	if err != nil {
		t.Fatal(err)
	}

	refDB, err := engine.Open(filepath.Join(t.TempDir(), "ref"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer refDB.Close()
	refWH := warehouse.New(refDB)
	if err := refWH.RegisterReplica("parts", srcTbl.Schema, "part_id", "last_modified"); err != nil {
		t.Fatal(err)
	}
	integ := &warehouse.ParallelIntegrator{W: refWH, Workers: 2}
	var batch []*opdelta.Op
	replayed := 0
	for _, op := range ops {
		if op.Seq > maxApplied {
			break
		}
		batch = append(batch, op)
		replayed++
		if len(batch) == 256 {
			if _, err := integ.Apply(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := integ.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	if replayed == 0 {
		t.Fatal("reference replay covered zero ops")
	}
	want := partsSnapshot(t, refDB)

	if len(got) != len(want) {
		t.Errorf("replica has %d rows, reference replay of %d ops has %d", len(got), replayed, len(want))
	}
	for pk, w := range want {
		if g, ok := got[pk]; !ok {
			t.Errorf("replica lost row pk=%s (%s)", pk, w)
		} else if g != w {
			t.Errorf("replica row pk=%s = %q, want %q", pk, g, w)
		}
	}
	for pk, g := range got {
		if _, ok := want[pk]; !ok {
			t.Errorf("replica has extra row pk=%s (%s)", pk, g)
		}
	}
}

// ackedSeq parses the shipper's drain summary line.
func ackedSeq(t *testing.T, line string) uint64 {
	t.Helper()
	var n uint64
	if _, err := fmt.Sscanf(line[strings.Index(line, "acked seq"):], "acked seq %d", &n); err != nil {
		t.Fatalf("cannot parse acked seq from %q: %v", line, err)
	}
	return n
}

// TestServeShipMetricsScrape is the CI gate for the networked pair: a
// replication server and two source shippers run as separate
// processes, the server /metrics must expose per-source apply and
// freshness-lag series and the shipper /metrics the reconnect/retry/
// redelivery/in-flight window series, and after a graceful drain each
// source's replica must match an exact replay of its op log.
func TestServeShipMetricsScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns daemon binaries")
	}
	bin := buildDaemon(t)
	work := t.TempDir()

	srv := startProc(t, "serve", bin,
		"-serve", "-out", filepath.Join(work, "out"),
		"-listen", "127.0.0.1:0", "-metrics", "127.0.0.1:0",
		"-duration", "2m")
	srvMetrics := srv.metricsURL()
	listenLine := srv.expectLine("listening on", 10*time.Second)
	addr := listenLine[strings.Index(listenLine, "listening on ")+len("listening on "):]

	ships := make([]*proc, 2)
	shipMetrics := make([]string, 2)
	for i, source := range []string{"src-a", "src-b"} {
		ships[i] = startProc(t, "ship-"+source, bin,
			"-ship", addr, "-src", filepath.Join(work, source),
			"-source", source, "-metrics", "127.0.0.1:0",
			"-loadgen", "500", "-duration", "2m")
		shipMetrics[i] = ships[i].metricsURL()
	}

	// Both sources must flow end to end: enqueued on the server, applied
	// into per-source warehouses, freshness lag live.
	for _, source := range []string{"src-a", "src-b"} {
		waitMetric(t, srvMetrics,
			fmt.Sprintf("netrepl_applied_ops_total{source=%q}", source),
			func(v float64) bool { return v >= 20 }, 20*time.Second)
	}
	body, err := scrape(srvMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("malformed server exposition: %v", err)
	}
	for _, name := range []string{
		"netrepl_server_enqueued_ops_total",
		"netrepl_server_connects_total",
		`netrepl_server_last_seq{source="src-a"}`,
		`netrepl_server_last_seq{source="src-b"}`,
	} {
		if v, ok := sampleValue(body, name); !ok || v <= 0 {
			t.Errorf("server series %s = %v (present=%v), want > 0", name, v, ok)
		}
	}
	for _, source := range []string{"src-a", "src-b"} {
		name := fmt.Sprintf("netrepl_freshness_lag_us{source=%q}", source)
		if _, ok := sampleValue(body, name); !ok {
			t.Errorf("server series %s missing", name)
		}
	}

	for i, source := range []string{"src-a", "src-b"} {
		b, err := scrape(shipMetrics[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateExposition(b); err != nil {
			t.Fatalf("malformed shipper exposition: %v", err)
		}
		// Counters that stay zero on a healthy run must still be exposed.
		for _, name := range []string{
			fmt.Sprintf("netrepl_shipper_reconnects_total{source=%q}", source),
			fmt.Sprintf("netrepl_shipper_retries_total{source=%q}", source),
			fmt.Sprintf("netrepl_shipper_redelivered_ops_total{source=%q}", source),
			fmt.Sprintf("netrepl_shipper_inflight_batches{source=%q}", source),
		} {
			if _, ok := sampleValue(b, name); !ok {
				t.Errorf("shipper series %s missing", name)
			}
		}
		for _, name := range []string{
			fmt.Sprintf("netrepl_shipper_ops_sent_total{source=%q}", source),
			fmt.Sprintf("netrepl_shipper_acked_seq{source=%q}", source),
		} {
			if v, ok := sampleValue(b, name); !ok || v <= 0 {
				t.Errorf("shipper series %s = %v (present=%v), want > 0", name, v, ok)
			}
		}
	}

	// Graceful drain: shippers first (they flush their windows), then the
	// server (appliers drain every enqueued op before exit).
	acked := make([]uint64, 2)
	for i := range ships {
		ships[i].drain(15 * time.Second)
		acked[i] = ackedSeq(t, ships[i].expectLine("drained at acked seq", time.Second))
	}
	srv.drain(15 * time.Second)
	srv.expectLine("2 source(s) closed", time.Second)

	for i, source := range []string{"src-a", "src-b"} {
		verifyReplica(t, filepath.Join(work, source), filepath.Join(work, "out", "wh-"+source), acked[i])
	}
}

// spanzDump mirrors the /debug/spanz JSON document.
type spanzDump struct {
	Traces []struct {
		TraceID string `json:"trace_id"`
		Source  string `json:"source"`
		Seq     uint64 `json:"seq"`
		Spans   []struct {
			SpanID   string `json:"span_id"`
			ParentID string `json:"parent_id"`
			Name     string `json:"name"`
		} `json:"spans"`
	} `json:"traces"`
	Slow []struct {
		TraceID string `json:"trace_id"`
		LagNs   int64  `json:"e2e_lag_ns"`
	} `json:"slow"`
}

func fetchSpanz(t *testing.T, base string) spanzDump {
	t.Helper()
	resp, err := http.Get(base + "/debug/spanz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d spanzDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("decode /debug/spanz: %v", err)
	}
	return d
}

// spanNames collapses a trace's spans to a name set.
func spanNames(spans []struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id"`
	Name     string `json:"name"`
}) map[string]bool {
	names := make(map[string]bool, len(spans))
	for _, s := range spans {
		names[s.Name] = true
	}
	return names
}

// TestServeShipTracing is the tracing acceptance run: a server and a
// shipper as separate processes with tracing on, the shipper's link
// routed through an injected-delay fault bridge. The delay must drive
// end-to-end latency past the server's -slowspan threshold (slow-span
// log line + spans_slow_total), the two /debug/spanz rings must join on
// trace ID into a complete cross-process chain (capture/ship on the
// shipper, persist/queue/apply/durable on the server), and the server
// must expose raw + skew-corrected replication lag series.
func TestServeShipTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns daemon binaries")
	}
	bin := buildDaemon(t)
	work := t.TempDir()

	srv := startProc(t, "serve", bin,
		"-serve", "-out", filepath.Join(work, "out"),
		"-listen", "127.0.0.1:0", "-metrics", "127.0.0.1:0",
		"-tracesample", "1", "-slowspan", "10ms", "-pprof",
		"-duration", "2m")
	srvMetrics := srv.metricsURL()
	listenLine := srv.expectLine("listening on", 10*time.Second)
	addr := listenLine[strings.Index(listenLine, "listening on ")+len("listening on "):]

	ship := startProc(t, "ship", bin,
		"-ship", addr, "-src", filepath.Join(work, "src"),
		"-source", "src-a", "-metrics", "127.0.0.1:0",
		"-loadgen", "200", "-tracesample", "1",
		"-faultdelayprob", "1", "-faultmaxdelay", "40ms",
		"-duration", "2m")
	shipMetrics := ship.metricsURL()
	ship.expectLine("fault link enabled", 10*time.Second)

	// Ops must flow end to end through the delayed link, and the injected
	// 0-40ms per-write delay must push traces past the 10ms threshold.
	waitMetric(t, srvMetrics, `netrepl_applied_ops_total{source="src-a"}`,
		func(v float64) bool { return v >= 20 }, 30*time.Second)
	waitMetric(t, srvMetrics, "spans_slow_total",
		func(v float64) bool { return v >= 1 }, 30*time.Second)
	srv.expectLine("slow trace", 10*time.Second)

	// The lag instruments: raw and skew-corrected histograms (all three
	// exposition series each) plus the corrected-lag gauge.
	body := waitMetric(t, srvMetrics, `netrepl_replication_lag_seconds_count{source="src-a"}`,
		func(v float64) bool { return v >= 1 }, 20*time.Second)
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("malformed server exposition: %v", err)
	}
	for _, name := range []string{
		`netrepl_replication_lag_seconds_sum{source="src-a"}`,
		`netrepl_replication_lag_raw_seconds_sum{source="src-a"}`,
		`netrepl_replication_lag_raw_seconds_count{source="src-a"}`,
		`netrepl_replication_lag_ns{source="src-a"}`,
	} {
		if _, ok := sampleValue(body, name); !ok {
			t.Errorf("server series %s missing", name)
		}
	}

	// Join the two processes' span rings on trace ID: at least one trace
	// must be complete across the wire — capture+ship recorded by the
	// shipper, persist+queue+apply+durable by the server, with the
	// persist span parented on the shipper's wire span.
	serverStages := []string{"persist", "queue", "apply", "durable"}
	var joined bool
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && !joined {
		srvDump := fetchSpanz(t, srvMetrics)
		shipDump := fetchSpanz(t, shipMetrics)
		shipTraces := make(map[string]map[string]bool)
		for _, tr := range shipDump.Traces {
			shipTraces[tr.TraceID] = spanNames(tr.Spans)
		}
		for _, tr := range srvDump.Traces {
			names := spanNames(tr.Spans)
			complete := true
			for _, stage := range serverStages {
				complete = complete && names[stage]
			}
			remote := shipTraces[tr.TraceID]
			if complete && remote["capture"] && remote["ship"] && tr.Source == "src-a" {
				joined = true
				break
			}
		}
		if !joined {
			time.Sleep(200 * time.Millisecond)
		}
	}
	if !joined {
		t.Error("no trace joined across both /debug/spanz rings with a complete capture/ship + persist/queue/apply/durable chain")
	}

	// The slow ring must carry breakdowns, and the human-readable tree
	// and pprof endpoints must both serve.
	srvDump := fetchSpanz(t, srvMetrics)
	if len(srvDump.Slow) == 0 {
		t.Error("server /debug/spanz slow ring empty despite spans_slow_total >= 1")
	}
	for _, url := range []string{
		srvMetrics + "/debug/spanz?format=tree",
		srvMetrics + "/debug/pprof/cmdline",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", url, resp.StatusCode)
		}
	}

	// Exactly-once still holds through the delayed link.
	ship.drain(30 * time.Second)
	acked := ackedSeq(t, ship.expectLine("drained at acked seq", time.Second))
	srv.drain(15 * time.Second)
	verifyReplica(t, filepath.Join(work, "src"), filepath.Join(work, "out", "wh-src-a"), acked)
}

// TestServeShipKill9Resume proves the acceptance criterion directly:
// kill -9 the shipper mid-stream and restart it, then kill -9 the
// server mid-stream and restart it; both restarts must resume from the
// last acked durable LSN, the surviving shipper must reconnect on its
// own, and after a final graceful drain the replica must equal an
// exact replay of the source op log — nothing lost, nothing doubled.
func TestServeShipKill9Resume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns daemon binaries")
	}
	bin := buildDaemon(t)
	work := t.TempDir()
	outDir := filepath.Join(work, "out")
	srcDir := filepath.Join(work, "src")

	startServer := func(listen string) (*proc, string, string) {
		p := startProc(t, "serve", bin,
			"-serve", "-out", outDir,
			"-listen", listen, "-metrics", "127.0.0.1:0",
			"-duration", "2m")
		metrics := p.metricsURL()
		line := p.expectLine("listening on", 10*time.Second)
		return p, metrics, line[strings.Index(line, "listening on ")+len("listening on "):]
	}
	startShipper := func(addr string) (*proc, string) {
		p := startProc(t, "ship", bin,
			"-ship", addr, "-src", srcDir, "-source", "src-a",
			"-metrics", "127.0.0.1:0", "-loadgen", "500", "-duration", "2m")
		return p, p.metricsURL()
	}

	srv, srvMetrics, addr := startServer("127.0.0.1:0")
	ship, _ := startShipper(addr)

	lastSeq := `netrepl_server_last_seq{source="src-a"}`

	// Phase 1: let the stream establish, then kill -9 the shipper.
	waitMetric(t, srvMetrics, lastSeq, func(v float64) bool { return v >= 50 }, 20*time.Second)
	ship.kill9()
	b, err := scrape(srvMetrics)
	if err != nil {
		t.Fatal(err)
	}
	seqAtShipKill, _ := sampleValue(b, lastSeq)

	// Phase 2: a fresh shipper process resumes from the server's WELCOME
	// watermark and the stream advances past where it died.
	ship, shipMetrics := startShipper(addr)
	waitMetric(t, srvMetrics, lastSeq,
		func(v float64) bool { return v >= seqAtShipKill+50 }, 20*time.Second)

	// Phase 3: kill -9 the server mid-stream. The shipper survives on
	// its retry loop; a restarted server recovers its topics from disk at
	// (at least) the killed server's watermark and the shipper reconnects
	// without losing its stream position.
	srv.kill9()
	b, err = scrape(shipMetrics)
	if err != nil {
		t.Fatal(err)
	}
	ackedAtSrvKill, _ := sampleValue(b, `netrepl_shipper_acked_seq{source="src-a"}`)

	srv, srvMetrics2, _ := startServer(addr) // rebind the same address
	body := waitMetric(t, srvMetrics2, lastSeq,
		func(v float64) bool { return v >= ackedAtSrvKill+50 }, 30*time.Second)
	if v, ok := sampleValue(body, lastSeq); !ok || v < ackedAtSrvKill {
		t.Fatalf("restarted server recovered seq %v < acked %v at kill time", v, ackedAtSrvKill)
	}
	b = waitMetric(t, shipMetrics, `netrepl_shipper_reconnects_total{source="src-a"}`,
		func(v float64) bool { return v >= 1 }, 20*time.Second)
	if v, ok := sampleValue(b, `netrepl_shipper_retries_total{source="src-a"}`); !ok || v < 1 {
		t.Errorf("shipper retries = %v (present=%v), want >= 1 after server kill", v, ok)
	}

	// Final drain and the exactly-once ledger check.
	ship.drain(15 * time.Second)
	acked := ackedSeq(t, ship.expectLine("drained at acked seq", time.Second))
	if acked < uint64(ackedAtSrvKill) {
		t.Errorf("final acked seq %d regressed below %v (acked before server kill)", acked, ackedAtSrvKill)
	}
	srv.drain(15 * time.Second)
	verifyReplica(t, srcDir, filepath.Join(outDir, "wh-src-a"), acked)
}

// partsByPK reads the parts table as part_id -> non-timestamp column
// values, for source/replica comparison keyed by integer PK.
func partsByPK(t *testing.T, db *engine.DB) map[int64]string {
	t.Helper()
	tbl, err := db.Table("parts")
	if err != nil {
		t.Fatal(err)
	}
	pkIdx, _ := tbl.Schema.ColIndex("part_id")
	tsIdx, _ := tbl.Schema.ColIndex("last_modified")
	rows := make(map[int64]string)
	if err := db.ScanTable(nil, "parts", func(row catalog.Tuple) error {
		cols := make([]string, 0, len(row))
		for i, v := range row {
			if i == tsIdx {
				continue
			}
			cols = append(cols, fmt.Sprint(v))
		}
		rows[row[pkIdx].Int()] = strings.Join(cols, "|")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestServeBootstrapKill9Resume is the bootstrap resume scenario: a
// shipper whose op log was truncated at its head forces a fresh replica
// through snapshot bootstrap; the server (the replica side) is killed
// -9 mid-bootstrap, and its restart must resume from the durable
// BootstrapLog — completing the run without re-fetching finished chunks
// (visible as the restarted server's netrepl_bootstrap_chunks_total
// staying well below the table's full chunk count) — and end with the
// replica matching the live source.
func TestServeBootstrapKill9Resume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns daemon binaries")
	}
	bin := buildDaemon(t)
	work := t.TempDir()
	srcDir := filepath.Join(work, "src")
	outDir := filepath.Join(work, "out")

	startServer := func(out, listen string) (*proc, string, string) {
		p := startProc(t, "serve", bin, "-serve", "-out", out,
			"-listen", listen, "-metrics", "127.0.0.1:0", "-duration", "2m")
		metrics := p.metricsURL()
		line := p.expectLine("listening on", 10*time.Second)
		return p, metrics, line[strings.Index(line, "listening on ")+len("listening on "):]
	}

	// Phase 0: build real source history against a throwaway replica, so
	// the truncated log leaves state only a snapshot can recover.
	srv0, m0, addr0 := startServer(filepath.Join(work, "out0"), "127.0.0.1:0")
	ship0 := startProc(t, "ship0", bin, "-ship", addr0, "-src", srcDir,
		"-source", "src-a", "-loadgen", "500", "-duration", "2m")
	waitMetric(t, m0, `netrepl_server_last_seq{source="src-a"}`,
		func(v float64) bool { return v >= 150 }, 20*time.Second)
	ship0.drain(15 * time.Second)
	srv0.drain(15 * time.Second)

	// Phase 1: fresh replica; the truncated log forces ModeBootstrap.
	// One-row chunks paced 20ms apart keep the bootstrap window long
	// enough to kill into, with the live workload trickling on.
	srv1, m1, addr := startServer(outDir, "127.0.0.1:0")
	ship := startProc(t, "ship", bin, "-ship", addr, "-src", srcDir, "-source", "src-a",
		"-truncatelog", "-chunkrows", "1", "-chunkdelay", "20ms", "-loadgen", "1", "-duration", "2m")
	ship.expectLine("op log truncated", 10*time.Second)
	chunksName := `netrepl_bootstrap_chunks_total{source="src-a"}`
	waitMetric(t, m1, chunksName, func(v float64) bool { return v >= 30 }, 30*time.Second)
	srv1.kill9()

	// The killed server's progress must be durable and mid-table.
	whDir := filepath.Join(outDir, "wh-src-a")
	k1 := func() int64 {
		db, err := engine.Open(whDir, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		blog, err := warehouse.EnsureBootstrapLog(warehouse.New(db))
		if err != nil {
			t.Fatal(err)
		}
		meta, err := blog.Meta()
		if err != nil {
			t.Fatal(err)
		}
		if !meta.Exists || meta.Done {
			t.Fatalf("bootstrap meta after kill = %+v, want an unfinished run", meta)
		}
		prog, err := blog.Progress()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range prog {
			if p.Table != "parts" {
				continue
			}
			if p.Done || len(p.LastKey) == 0 {
				t.Fatalf("parts progress after kill = %+v, want mid-table", p)
			}
			tbl, err := db.Table("parts")
			if err != nil {
				t.Fatal(err)
			}
			v, err := opdelta.NewKeyCodec(tbl.Schema.Column(tbl.PKCol)).Decode(p.LastKey)
			if err != nil {
				t.Fatal(err)
			}
			return v.Int()
		}
		t.Fatal("no durable bootstrap progress for parts after kill -9")
		return 0
	}()
	t.Logf("killed mid-bootstrap with durable progress through part_id %d", k1)

	// Phase 2: restart the replica on the same address. The shipper
	// reconnects on its own; the handshake resumes the run from the
	// durable progress and finishes it.
	srv2, m2, _ := startServer(outDir, addr)
	waitMetric(t, m2, chunksName, func(v float64) bool { return v >= 1 }, 30*time.Second)
	waitMetric(t, m2, `netrepl_bootstrap_active{source="src-a"}`,
		func(v float64) bool { return v == 0 }, 60*time.Second)
	body, err := scrape(m2)
	if err != nil {
		t.Fatal(err)
	}
	c2, ok := sampleValue(body, chunksName)
	if !ok {
		t.Fatalf("no %s after resume; scrape:\n%s", chunksName, body)
	}

	ship.drain(15 * time.Second)
	acked := ackedSeq(t, ship.expectLine("drained at acked seq", time.Second))
	srv2.drain(15 * time.Second)

	// No re-fetch: the restarted server's chunk count must be bounded by
	// the rows ABOVE the durable progress key (plus slack for live
	// inserts and chases) — re-reading the finished prefix would blow
	// well past it.
	src, err := engine.Open(srcDir, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	wh, err := engine.Open(whDir, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	whRows := partsByPK(t, wh)
	nBelow := 0
	for pk := range whRows {
		if pk <= k1 {
			nBelow++
		}
	}
	if nBelow < 10 {
		t.Fatalf("only %d replica rows at or below the kill-time progress key %d; the kill landed too early to prove resume", nBelow, k1)
	}
	if c2 > float64(len(whRows)-nBelow+15) {
		t.Errorf("restarted server applied %.0f chunks for %d remaining rows (%d total, %d already finished); it re-fetched finished chunks",
			c2, len(whRows)-nBelow, len(whRows), nBelow)
	}

	// Replica equals the source everywhere except keys touched by the
	// few trailing ops captured after the shipper's final fetch (they
	// are still in the op log above the acked seq — exclude exactly
	// their statement footprints).
	oplog, err := opdelta.NewTableLog(src)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := oplog.Read(acked)
	if err != nil {
		t.Fatal(err)
	}
	srcTbl, err := src.Table("parts")
	if err != nil {
		t.Fatal(err)
	}
	var tailFps []keyset.Footprint
	for _, op := range tail {
		fp := keyset.WholeTable()
		if stmt, err := op.Statement(); err == nil {
			fp = keyset.StatementFootprint(stmt, srcTbl.Schema, "part_id")
		}
		tailFps = append(tailFps, fp)
	}
	inTail := func(pk int64) bool {
		pt := keyset.Footprint{Ranges: []keyset.KeyRange{keyset.Point(catalog.NewInt(pk))}}
		for _, fp := range tailFps {
			if fp.Overlaps(pt) {
				return true
			}
		}
		return false
	}
	srcRows := partsByPK(t, src)
	mismatches := 0
	for pk, w := range srcRows {
		if inTail(pk) {
			continue
		}
		if g, ok := whRows[pk]; !ok {
			t.Errorf("replica lost row pk=%d (%s)", pk, w)
			mismatches++
		} else if g != w {
			t.Errorf("replica row pk=%d = %q, want %q", pk, g, w)
			mismatches++
		}
	}
	for pk, g := range whRows {
		if _, ok := srcRows[pk]; !ok && !inTail(pk) {
			t.Errorf("replica has extra row pk=%d (%s)", pk, g)
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Logf("replica matches source across %d rows (%d tail ops excluded); resume applied %.0f chunks after %d finished",
			len(srcRows), len(tail), c2, nBelow)
	}
}
