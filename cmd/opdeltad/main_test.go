package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"opdelta/internal/obs"
)

// TestLiveMetricsScrape is the CI scrape gate: it builds the daemon,
// boots the live pipeline with -metrics, scrapes /metrics while the
// integration is running, and fails on malformed exposition lines or on
// any of the acceptance series (freshness lag, queue depth, WAL fsync
// latency, pool hit ratio, lock grants) missing or zero. It also pulls
// /debug/deltaz and asserts every completed lifecycle's timestamps are
// monotone across capture -> enqueue -> dequeue -> lock -> apply ->
// durable.
func TestLiveMetricsScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns the daemon binary")
	}
	work := t.TempDir()
	bin := filepath.Join(work, "opdeltad")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-live",
		"-src", filepath.Join(work, "src"),
		"-out", filepath.Join(work, "out"),
		"-metrics", "127.0.0.1:0",
		"-loadgen", "400",
		"-duration", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	// The daemon prints the resolved URL ("-metrics 127.0.0.1:0" picks a
	// free port) as its first line.
	var base string
	lines := bufio.NewScanner(stdout)
	if !lines.Scan() {
		t.Fatal("daemon exited before printing the metrics URL")
	}
	first := lines.Text()
	if i := strings.Index(first, "http://"); i < 0 {
		t.Fatalf("no metrics URL in %q", first)
	} else {
		base = strings.TrimSuffix(strings.Fields(first[i:])[0], "/metrics")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// Poll until the pipeline has completed traces, then hold that scrape.
	var body []byte
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no completed traces before deadline; last scrape:\n%s", body)
		}
		time.Sleep(300 * time.Millisecond)
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			continue
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		if v, ok := sampleValue(body, "delta_traces_total"); ok && v > 0 {
			break
		}
	}

	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}

	mustPositive := []string{
		"delta_traces_total",
		"delta_freshness_lag_seconds_count",
		"delta_freshness_lag_seconds_sum",
		"opdelta_captured_total",
		"transport_queue_appends_total",
		`wal_fsync_seconds_count{db="wh"}`,
		`wal_group_commit_cohort_records_count{db="wh"}`,
		`txn_lock_grants_total{db="wh"}`,
		`warehouse_apply_txns_total{integrator="parallel"}`,
	}
	for _, name := range mustPositive {
		v, ok := sampleValue(body, name)
		if !ok {
			t.Errorf("series %s missing from scrape", name)
		} else if v <= 0 {
			t.Errorf("series %s = %v, want > 0", name, v)
		}
	}
	if v, ok := sampleValue(body, `storage_pool_hit_ratio{db="wh",pool="parts"}`); !ok || v <= 0 {
		t.Errorf("storage_pool_hit_ratio{db=wh,pool=parts} = %v (present=%v), want > 0", v, ok)
	}

	// Queue depth oscillates with the applier's drain cadence; require a
	// non-zero reading within a few scrapes rather than at one instant.
	depthSeen := false
	for i := 0; i < 20 && !depthSeen; i++ {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if v, ok := sampleValue(b, "transport_queue_depth_bytes"); ok && v > 0 {
				depthSeen = true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !depthSeen {
		t.Error("transport_queue_depth_bytes never read > 0 during the run")
	}

	// Every completed lifecycle must be stamped in pipeline order.
	resp, err := http.Get(base + "/debug/deltaz?n=128")
	if err != nil {
		t.Fatal(err)
	}
	var dz struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(dz.Traces) == 0 {
		t.Fatal("/debug/deltaz returned no traces")
	}
	for _, tr := range dz.Traces {
		assertMonotoneTrace(t, tr)
	}
}

// sampleValue finds the sample whose name (with labels, if any) is
// exactly prefix and returns its value.
func sampleValue(body []byte, prefix string) (float64, bool) {
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err == nil {
			return v, true
		}
	}
	return 0, false
}

// assertMonotoneTrace checks the stamped stages of one lifecycle are
// non-decreasing in pipeline order and that freshness covers the whole
// capture->durable span.
func assertMonotoneTrace(t *testing.T, tr obs.TraceRecord) {
	t.Helper()
	stamps := []struct {
		name string
		ns   int64
	}{
		{"captured", tr.Captured},
		{"enqueued", tr.Enqueued},
		{"dequeued", tr.Dequeued},
		{"locked", tr.Locked},
		{"applied", tr.Applied},
		{"durable", tr.Durable},
	}
	prev := stamps[0]
	if prev.ns == 0 {
		t.Errorf("trace seq=%d has no capture stamp", tr.Seq)
		return
	}
	for _, s := range stamps[1:] {
		if s.ns == 0 {
			t.Errorf("trace seq=%d missing %s stamp", tr.Seq, s.name)
			continue
		}
		if s.ns < prev.ns {
			t.Errorf("trace seq=%d: %s (%d) precedes %s (%d)", tr.Seq, s.name, s.ns, prev.name, prev.ns)
		}
		prev = s
	}
	if tr.Durable != 0 {
		want := tr.Durable - tr.Captured
		if want < 0 {
			want = 0
		}
		if tr.FreshnessNs != want {
			t.Errorf("trace seq=%d freshness = %d, want durable-captured = %d", tr.Seq, tr.FreshnessNs, want)
		}
	}
}
