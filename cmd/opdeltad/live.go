package main

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"opdelta/internal/engine"
	"opdelta/internal/obs"
	"opdelta/internal/opdelta"
	"opdelta/internal/transport"
	"opdelta/internal/wal"
	"opdelta/internal/warehouse"
)

// diagOpts carries the diagnostics flags shared by every long-running
// mode: head-sampling rate and slow-trace threshold for the span
// tracer, and whether to mount net/http/pprof on the metrics mux.
type diagOpts struct {
	pprof       bool
	traceSample int
	slowSpan    time.Duration
}

// newSpanTracer builds the process's span tracer from the diagnostics
// flags, with slow traces logged to stdout.
func newSpanTracer(reg *obs.Registry, d diagOpts) *obs.SpanTracer {
	spans := obs.NewSpanTracer(reg, 512)
	spans.SetSampleEvery(d.traceSample)
	spans.SetSlowThreshold(d.slowSpan)
	spans.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	return spans
}

// serveObs starts the metrics endpoint and prints the resolved URL (so
// "-metrics 127.0.0.1:0" callers — tests, CI — learn the picked port).
// With pprofOn the mux additionally serves net/http/pprof profiles
// under /debug/pprof/.
func serveObs(addr string, reg *obs.Registry, tracer *obs.Tracer, spans *obs.SpanTracer, pprofOn bool) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	url := fmt.Sprintf("http://%s", ln.Addr())
	fmt.Printf("opdeltad: serving %s/metrics and %s/debug/{deltaz,spanz}\n", url, url)
	var h http.Handler = obs.Handler(reg, tracer, spans)
	if pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", h)
		h = mux
		fmt.Printf("opdeltad: pprof enabled under %s/debug/pprof/\n", url)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return url, nil
}

// runLive drives the whole delta pipeline inside one process: a load
// generator issues DML against the source through the Op-Delta capture
// wrapper, a shipper reads the op log and appends encoded ops to the
// persistent transport queue, and an applier drains the queue into a
// warehouse (replica + projection view) through the parallel
// integrator. Every op carries a lifecycle trace — captured, enqueued,
// dequeued, locked, applied, durable — so /metrics reports live
// freshness lag and per-stage latency while the pipeline runs.
func runLive(srcDir, outDir, metricsAddr string, rate int, duration time.Duration, d diagOpts) error {
	reg := obs.Default()
	tracer := obs.NewTracer(reg, 512)
	spans := newSpanTracer(reg, d)
	if metricsAddr != "" {
		if _, err := serveObs(metricsAddr, reg, tracer, spans, d.pprof); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	// Full-durability commits on both ends: every commit waits for a WAL
	// fsync (group-committed across the parallel appliers), which is the
	// configuration the cohort-size and fsync-latency histograms are
	// meant to characterize.
	src, err := engine.Open(srcDir, engine.Options{Obs: reg, ObsDB: "src", WALSync: wal.SyncFull})
	if err != nil {
		return err
	}
	defer src.Close()
	if _, err := src.Table("parts"); err != nil {
		const ddl = `CREATE TABLE parts (
			part_id BIGINT NOT NULL, status VARCHAR, qty BIGINT, last_modified TIMESTAMP
		) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`
		if _, err := src.Exec(nil, ddl); err != nil {
			return err
		}
	}
	tbl, err := src.Table("parts")
	if err != nil {
		return err
	}
	view := opdelta.ViewDef{
		Name: "slim_parts", Source: "parts",
		Project:  []string{"part_id", "status"},
		SourcePK: "part_id", SourceTS: "last_modified",
	}
	oplog, err := opdelta.NewTableLog(src)
	if err != nil {
		return err
	}
	capture := &opdelta.Capture{DB: src, Log: oplog, Analyzer: opdelta.NewAnalyzer(view), Obs: reg}

	queue, err := transport.OpenQueueObs(nil, filepath.Join(outDir, "queue"), reg)
	if err != nil {
		return err
	}
	defer queue.Close()

	whDB, err := engine.Open(filepath.Join(outDir, "wh"), engine.Options{Obs: reg, ObsDB: "wh", WALSync: wal.SyncFull})
	if err != nil {
		return err
	}
	defer whDB.Close()
	wh := warehouse.New(whDB)
	if err := wh.RegisterReplica("parts", tbl.Schema, "part_id", "last_modified"); err != nil {
		return err
	}
	if _, err := wh.RegisterView(view, tbl.Schema, nil); err != nil {
		return err
	}
	integ := &warehouse.ParallelIntegrator{W: wh, Workers: 4}

	if rate <= 0 {
		rate = 200
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	// In-flight traces keyed by op Seq: Op.Trace does not survive the
	// queue's Encode/DecodeOp round trip, so the applier re-attaches by
	// sequence number.
	var traces sync.Map

	var wg sync.WaitGroup

	// Load generator: inserts with occasional PK-targeted updates and
	// deletes, all bounded footprints so the parallel integrator's
	// key-range locking gets exercised.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(time.Second / time.Duration(rate))
		defer ticker.Stop()
		id := 0
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			id++
			stmt := fmt.Sprintf(`INSERT INTO parts (part_id, status, qty) VALUES (%d, 'new', %d)`, id, id%1000)
			switch {
			case id%8 == 0:
				stmt = fmt.Sprintf(`UPDATE parts SET status = 'hot' WHERE part_id = %d`, id-4)
			case id%16 == 9:
				stmt = fmt.Sprintf(`DELETE FROM parts WHERE part_id = %d`, id-8)
			}
			if _, err := capture.Exec(nil, stmt); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Shipper: tail the op log, begin each op's trace at its capture
	// timestamp, and append the encoded op to the queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		var cursor uint64
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			ops, err := oplog.Read(cursor)
			if err != nil {
				fail(err)
				return
			}
			for _, op := range ops {
				tr := tracer.Begin(op.Seq, op.Txn, op.Time)
				// Single-process spans: same stages as the networked
				// pipeline minus the wire, so /debug/spanz and the
				// slow-span log work identically in live mode. No clock
				// skew to correct — capture and apply share one clock.
				if tid := obs.TraceID("live", op.Seq); spans.Sampled(tid) {
					tr.SetOnDone(func(rec obs.TraceRecord) {
						emitLocalSpans(spans, tid, "live", rec)
					})
				}
				// Stamp and publish the trace before the append: the
				// applier can dequeue the instant Append lands, and a
				// post-append stamp would race it backwards.
				tr.Enqueued()
				traces.Store(op.Seq, tr)
				enc, err := op.Encode(nil, tbl.Schema)
				if err != nil {
					fail(err)
					return
				}
				if err := queue.Append(enc); err != nil {
					fail(err)
					return
				}
				cursor = op.Seq
			}
		}
	}()

	// Applier: drain the queue in batches into the warehouse. The
	// integrator stamps locked/applied/durable and completes each trace.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var batch []*opdelta.Op
			for len(batch) < 256 {
				msg, err := queue.Next()
				if errors.Is(err, transport.ErrEmpty) {
					break
				}
				if err != nil {
					fail(err)
					return
				}
				op, _, err := opdelta.DecodeOp(msg, tbl.Schema)
				if err != nil {
					fail(err)
					return
				}
				if v, ok := traces.LoadAndDelete(op.Seq); ok {
					op.Trace = v.(*obs.Trace)
					op.Trace.Dequeued()
				}
				batch = append(batch, op)
			}
			if len(batch) == 0 {
				// Let a few source transactions accumulate: batches give
				// the conflict scheduler something to overlap, and the
				// queue holds a visible (non-zero) depth between drains.
				time.Sleep(20 * time.Millisecond)
				continue
			}
			if _, err := integ.Apply(batch); err != nil {
				fail(err)
				return
			}
			if err := queue.Ack(); err != nil {
				fail(err)
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	var timeout <-chan time.Time
	if duration > 0 {
		t := time.NewTimer(duration)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-sig:
	case <-timeout:
	case <-stop:
	}
	cancel()
	wg.Wait()

	snap := reg.Snapshot()
	captured, applied, traced := 0.0, 0.0, 0.0
	if m := snap.Get("opdelta_captured_total"); m != nil {
		captured = m.Value
	}
	if m := snap.Get("warehouse_apply_txns_total", obs.L("integrator", "parallel")); m != nil {
		applied = m.Value
	}
	if m := snap.Get("delta_traces_total"); m != nil {
		traced = m.Value
	}
	fmt.Printf("opdeltad: live pipeline done: %d ops captured, %d warehouse txns applied, %d lifecycles traced\n",
		int(captured), int(applied), int(traced))
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// emitLocalSpans converts a completed lifecycle trace into the span
// chain the networked pipeline would have produced, for a pipeline that
// runs in one process (one clock, no wire hops).
func emitLocalSpans(spans *obs.SpanTracer, tid uint64, source string, rec obs.TraceRecord) {
	capID := obs.SpanIDFor(tid, "capture")
	queueID := obs.SpanIDFor(tid, "queue")
	applyID := obs.SpanIDFor(tid, "apply")
	durableID := obs.SpanIDFor(tid, "durable")
	if rec.Enqueued != 0 {
		spans.Record(obs.SpanRecord{TraceID: tid, SpanID: capID, Name: "capture",
			Source: source, Seq: rec.Seq, StartUnixNs: rec.Captured, EndUnixNs: rec.Enqueued})
	}
	if rec.Enqueued != 0 && rec.Dequeued != 0 {
		spans.Record(obs.SpanRecord{TraceID: tid, SpanID: queueID, ParentID: capID, Name: "queue",
			Source: source, Seq: rec.Seq, StartUnixNs: rec.Enqueued, EndUnixNs: rec.Dequeued})
	}
	applyStart := rec.Locked
	if applyStart == 0 {
		applyStart = rec.Dequeued
	}
	if applyStart != 0 && rec.Applied != 0 {
		spans.Record(obs.SpanRecord{TraceID: tid, SpanID: applyID, ParentID: queueID, Name: "apply",
			Source: source, Seq: rec.Seq, StartUnixNs: applyStart, EndUnixNs: rec.Applied})
	}
	if rec.Applied != 0 && rec.Durable != 0 {
		spans.Record(obs.SpanRecord{TraceID: tid, SpanID: durableID, ParentID: applyID, Name: "durable",
			Source: source, Seq: rec.Seq, StartUnixNs: rec.Applied, EndUnixNs: rec.Durable})
	}
	if rec.Durable != 0 && rec.Captured != 0 {
		spans.ObserveE2E(tid, source, rec.Seq, rec.Durable-rec.Captured)
	}
}
