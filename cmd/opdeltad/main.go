// Command opdeltad is the extraction daemon: it runs delta extraction
// passes against a source database directory using any of the paper's
// methods and writes the results to an output directory, maintaining
// the method's cursor across invocations.
//
// Usage:
//
//	opdeltad -src DIR -out DIR -table parts -method METHOD [-watch INTERVAL]
//
// Methods:
//
//	timestamp  SELECT rows whose last-modified column advanced (upserts only)
//	trigger    drain the trigger-capture table (must be installed by the app)
//	log        mine committed changes from the WAL/archive
//	snapshot   snapshot the table and diff against the previous snapshot
//	opdelta    read captured operations from the op log table
//
// Each pass appends a numbered delta file (<table>.<seq>.delta for value
// deltas, <table>.<seq>.ops for operations) to the output directory.
//
// With -metrics ADDR the daemon serves /metrics (Prometheus text
// exposition), /debug/deltaz (recent delta lifecycle traces, JSON) and
// /debug/spanz (recent span traces, JSON; ?format=tree for a rendered
// span tree) on ADDR; port 0 picks a free port and the resolved URL is
// printed. -pprof additionally mounts net/http/pprof profiles under
// /debug/pprof/ on the same mux. -tracesample and -slowspan control
// span head-sampling and the slow-trace log threshold.
//
// With -live the daemon instead runs the full pipeline in-process —
// load generation through Op-Delta capture, a persistent queue, and
// parallel warehouse apply — stamping every delta's lifecycle so the
// metrics endpoint reports live freshness lag (see live.go).
//
// With -serve the daemon is the warehouse side of networked
// replication: it accepts shipper connections on -listen, lands op
// batches in per-source durable topics under -out, and applies each
// source into its own warehouse exactly once (see serve.go). With
// -ship ADDR it is the source side: load generation through Op-Delta
// capture under -src, streamed to the server with acked resumable
// delivery (see ship.go). Both drain gracefully on SIGINT/SIGTERM and
// resume from the last acked durable LSN after a hard kill.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/extract"
	"opdelta/internal/obs"
	"opdelta/internal/opdelta"
	"opdelta/internal/wal"
)

func main() {
	var (
		srcDir     = flag.String("src", "", "source database directory (required)")
		outDir     = flag.String("out", "", "output directory for delta files and cursors (required)")
		table      = flag.String("table", "parts", "source table to extract from")
		method     = flag.String("method", "timestamp", "timestamp|trigger|log|snapshot|opdelta")
		watch      = flag.Duration("watch", 0, "re-extract on this interval (0 = one pass)")
		window     = flag.Int("window", 0, "snapshot method: window rows (0 = exact sort-merge)")
		archive    = flag.Bool("archive", false, "log method: mine the archive directory instead of the live WAL")
		metrics    = flag.String("metrics", "", "serve /metrics and /debug/deltaz on this address (port 0 picks a free port)")
		live       = flag.Bool("live", false, "run the live capture->queue->warehouse pipeline under -out instead of extraction passes")
		loadgen    = flag.Int("loadgen", 200, "live/ship mode: source statements per second")
		runFor     = flag.Duration("duration", 0, "live/serve/ship mode: stop after this long (0 = run until interrupted)")
		serve      = flag.Bool("serve", false, "run the replication server: accept shippers on -listen, apply under -out")
		listen     = flag.String("listen", "127.0.0.1:0", "serve mode: replication listen address")
		ship       = flag.String("ship", "", "run a replication shipper against this server address, capturing under -src")
		source     = flag.String("source", "src-1", "ship mode: source id announced to the server")
		truncLog   = flag.Bool("truncatelog", false, "ship mode: truncate the op log at its head on startup, forcing a fresh replica to snapshot-bootstrap")
		chunkRows  = flag.Int("chunkrows", 128, "ship mode: rows per snapshot bootstrap chunk")
		chunkDelay = flag.Duration("chunkdelay", 0, "ship mode: pause between snapshot bootstrap chunks (paces bootstrap against live traffic)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/ on the metrics address")
		traceSmpl  = flag.Int("tracesample", 1, "serve/ship/live mode: head-sample one in N replication traces by trace ID (0 disables span tracing)")
		slowSpan   = flag.Duration("slowspan", 0, "serve/live mode: log a per-stage breakdown for traces whose end-to-end lag exceeds this (0 = off)")
		faultDelay = flag.Float64("faultdelayprob", 0, "ship mode: probability of delaying each outgoing frame through an injected fault link (testing)")
		faultMax   = flag.Duration("faultmaxdelay", 2*time.Millisecond, "ship mode: maximum injected per-frame delay")
	)
	flag.Parse()
	diag := diagOpts{pprof: *pprofOn, traceSample: *traceSmpl, slowSpan: *slowSpan}
	if *serve {
		if *outDir == "" {
			flag.Usage()
			os.Exit(2)
		}
		if err := runServe(*listen, *outDir, *metrics, *runFor, diag); err != nil {
			fatal(err)
		}
		return
	}
	if *ship != "" {
		if *srcDir == "" {
			flag.Usage()
			os.Exit(2)
		}
		if err := runShip(*ship, *srcDir, *source, *metrics, *loadgen, *chunkRows, *chunkDelay, *truncLog, *runFor, diag, *faultDelay, *faultMax); err != nil {
			fatal(err)
		}
		return
	}
	if *srcDir == "" || *outDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *live {
		if err := runLive(*srcDir, *outDir, *metrics, *loadgen, *runFor, diag); err != nil {
			fatal(err)
		}
		return
	}
	if *metrics != "" {
		if _, err := serveObs(*metrics, obs.Default(), nil, nil, diag.pprof); err != nil {
			fatal(err)
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	db, err := engine.Open(*srcDir, engine.Options{Obs: obs.Default(), ObsDB: "src"})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	for {
		n, out, err := runPass(db, *method, *table, *outDir, *window, *archive)
		if err != nil {
			fatal(err)
		}
		if n > 0 {
			fmt.Printf("%s: extracted %d deltas via %s -> %s\n", *table, n, *method, out)
		} else {
			fmt.Printf("%s: no changes\n", *table)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
	}
}

// cursor files persist each method's extraction position across runs.
func cursorPath(outDir, method, table string) string {
	return filepath.Join(outDir, fmt.Sprintf("%s.%s.cursor", table, method))
}

func loadCursor(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
}

func saveCursor(path string, v uint64) error {
	return os.WriteFile(path, []byte(strconv.FormatUint(v, 10)), 0o644)
}

// nextOutputPath allocates the next numbered delta file.
func nextOutputPath(outDir, table, ext string) (string, error) {
	for seq := 1; ; seq++ {
		path := filepath.Join(outDir, fmt.Sprintf("%s.%06d.%s", table, seq, ext))
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}

func runPass(db *engine.DB, method, table, outDir string, window int, archive bool) (int, string, error) {
	tbl, err := db.Table(table)
	if err != nil {
		return 0, "", err
	}
	switch method {
	case "timestamp":
		cpath := cursorPath(outDir, method, table)
		cur, err := loadCursor(cpath)
		if err != nil {
			return 0, "", err
		}
		ex := &extract.TimestampExtractor{DB: db, Table: table, Since: time.Unix(0, int64(cur))}
		n, out, err := extractToFile(ex, tbl.Schema, outDir, table)
		if err != nil {
			return 0, "", err
		}
		return n, out, saveCursor(cpath, uint64(ex.Since.UnixNano()))
	case "trigger":
		sink, err := extract.EnsureDeltaTable(db, table)
		if err != nil {
			return 0, "", err
		}
		out, err := nextOutputPath(outDir, table, "delta")
		if err != nil {
			return 0, "", err
		}
		fs, err := extract.NewFileSink(out, tbl.Schema)
		if err != nil {
			return 0, "", err
		}
		n, err := sink.Drain(fs)
		if err != nil {
			fs.Close()
			return 0, "", err
		}
		if err := fs.Close(); err != nil {
			return 0, "", err
		}
		if n == 0 {
			os.Remove(out)
		}
		return n, out, nil
	case "log":
		dir := db.WALDir()
		if archive {
			dir = db.ArchiveDir()
		}
		cpath := cursorPath(outDir, method, table)
		cur, err := loadCursor(cpath)
		if err != nil {
			return 0, "", err
		}
		miner := &extract.LogMiner{Dir: dir, FromLSN: wal.LSN(cur),
			Schemas: map[string]*catalog.Schema{table: tbl.Schema}}
		n, out, err := extractToFile(miner, tbl.Schema, outDir, table)
		if err != nil {
			return 0, "", err
		}
		return n, out, saveCursor(cpath, uint64(miner.FromLSN))
	case "snapshot":
		ex := &extract.SnapshotExtractor{DB: db, Table: table, Dir: outDir, WindowRows: window}
		// Snapshot rotation state lives in the out dir; a previous
		// snapshot marks a warm cursor.
		if _, err := os.Stat(filepath.Join(outDir, table+".prev.snap")); err == nil {
			ex.PrimeFromExisting()
		}
		return extractToFile(ex, tbl.Schema, outDir, table)
	case "opdelta":
		log, err := opdelta.NewTableLog(db)
		if err != nil {
			return 0, "", err
		}
		cpath := cursorPath(outDir, method, table)
		cur, err := loadCursor(cpath)
		if err != nil {
			return 0, "", err
		}
		ops, err := log.Read(cur)
		if err != nil {
			return 0, "", err
		}
		if len(ops) == 0 {
			return 0, "", nil
		}
		out, err := nextOutputPath(outDir, table, "ops")
		if err != nil {
			return 0, "", err
		}
		if err := writeOpsFile(out, ops, tbl.Schema); err != nil {
			return 0, "", err
		}
		return len(ops), out, saveCursor(cpath, ops[len(ops)-1].Seq)
	default:
		return 0, "", fmt.Errorf("unknown method %q", method)
	}
}

func extractToFile(ex extract.Extractor, schema *catalog.Schema, outDir, table string) (int, string, error) {
	out, err := nextOutputPath(outDir, table, "delta")
	if err != nil {
		return 0, "", err
	}
	fs, err := extract.NewFileSink(out, schema)
	if err != nil {
		return 0, "", err
	}
	n, err := ex.Extract(fs)
	if err != nil {
		fs.Close()
		return 0, "", err
	}
	if err := fs.Close(); err != nil {
		return 0, "", err
	}
	if n == 0 {
		os.Remove(out)
	}
	return n, out, nil
}

// writeOpsFile serializes ops in the FileLog framing so dwctl apply-ops
// can read them back.
func writeOpsFile(path string, ops []*opdelta.Op, schema *catalog.Schema) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, op := range ops {
		payload, err := op.Encode(nil, schema)
		if err != nil {
			f.Close()
			return err
		}
		var hdr [4]byte
		hdr[0] = byte(len(payload))
		hdr[1] = byte(len(payload) >> 8)
		hdr[2] = byte(len(payload) >> 16)
		hdr[3] = byte(len(payload) >> 24)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(payload); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opdeltad:", err)
	os.Exit(1)
}
