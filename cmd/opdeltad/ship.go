package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"opdelta/internal/catalog"
	"opdelta/internal/engine"
	"opdelta/internal/fault"
	"opdelta/internal/obs"
	"opdelta/internal/opdelta"
	netrepl "opdelta/internal/transport/net"
	"opdelta/internal/transport/retry"
	"opdelta/internal/wal"
)

// runShip is the source side of networked replication: a load
// generator issues DML against the source through the Op-Delta capture
// wrapper, and a netrepl shipper streams the op log to the replication
// server with acked, resumable delivery. The shipper keeps no durable
// cursor of its own — after any restart (including kill -9) it resumes
// from the durable LSN the server names in its WELCOME, so nothing is
// lost and redelivered ops are deduplicated server-side.
//
// Shutdown is graceful on SIGINT/SIGTERM: load generation stops, the
// shipper drains its in-flight window, and the stream ends with a
// SHUTDOWN frame.
//
// The shipper always carries a Snapshotter, so a bare replica (topic
// behind the op log's truncation base) can negotiate a DBLog-style
// snapshot bootstrap in the handshake: chunked reads in PK order,
// bracketed by watermarks, interleaved with the live delta stream —
// writers are never blocked. With truncate, the op log is truncated at
// its current head on startup, forcing exactly that path on a fresh
// server; chunkRows/chunkDelay pace the chunk reads.
func runShip(serverAddr, srcDir, source, metricsAddr string, rate, chunkRows int, chunkDelay time.Duration, truncate bool, duration time.Duration, d diagOpts, faultDelayProb float64, faultMaxDelay time.Duration) error {
	reg := obs.Default()
	spans := newSpanTracer(reg, d)
	if metricsAddr != "" {
		if _, err := serveObs(metricsAddr, reg, nil, spans, d.pprof); err != nil {
			return err
		}
	}
	src, err := engine.Open(srcDir, engine.Options{Obs: reg, ObsDB: "src", WALSync: wal.SyncFull})
	if err != nil {
		return err
	}
	defer src.Close()
	if _, err := src.Table("parts"); err != nil {
		const ddl = `CREATE TABLE parts (
			part_id BIGINT NOT NULL, status VARCHAR, qty BIGINT, last_modified TIMESTAMP
		) PRIMARY KEY (part_id) TIMESTAMP COLUMN (last_modified)`
		if _, err := src.Exec(nil, ddl); err != nil {
			return err
		}
	}
	view := opdelta.ViewDef{
		Name: "slim_parts", Source: "parts",
		Project:  []string{"part_id", "status"},
		SourcePK: "part_id", SourceTS: "last_modified",
	}
	oplog, err := opdelta.NewTableLog(src)
	if err != nil {
		return err
	}
	capture := &opdelta.Capture{DB: src, Log: oplog, Analyzer: opdelta.NewAnalyzer(view), Obs: reg}

	if truncate {
		if head := oplog.Seq(); head > 0 {
			if err := oplog.Truncate(head); err != nil {
				return err
			}
			fmt.Printf("opdeltad: op log truncated at seq %d; a bare replica must bootstrap\n", head)
		}
	}
	snap := &opdelta.Snapshotter{
		DB: src, Log: oplog, Tables: []string{"parts"},
		ChunkRows: chunkRows, ChunkDelay: chunkDelay,
	}

	dial := func() (net.Conn, error) { return net.DialTimeout("tcp", serverAddr, 2*time.Second) }
	if faultDelayProb > 0 {
		// Route every connection through a seeded fault link that delays
		// frames per the schedule: bytes the shipper writes cross the
		// fault net, then a goroutine bridge relays them onto the real
		// TCP connection (and the reverse for reads). Exercises the
		// slow-span diagnostics against genuine wire latency.
		nw := fault.NewNet(fault.NetProfile{Seed: 1, DelayProb: faultDelayProb, MaxDelay: faultMaxDelay})
		lis := nw.Listener()
		tcpDial := dial
		dial = func() (net.Conn, error) {
			tcp, err := tcpDial()
			if err != nil {
				return nil, err
			}
			local, err := nw.Dial()
			if err != nil {
				tcp.Close()
				return nil, err
			}
			far, err := lis.Accept()
			if err != nil {
				tcp.Close()
				local.Close()
				return nil, err
			}
			bridgeConns(far, tcp)
			return local, nil
		}
		fmt.Printf("opdeltad: fault link enabled: delayprob=%g maxdelay=%s\n", faultDelayProb, faultMaxDelay)
	}

	sh := netrepl.NewShipper(netrepl.ShipperConfig{
		Source: source,
		Dial:   dial,
		Fetch:  oplog.Read,
		SchemaOf: func(table string) (*catalog.Schema, error) {
			t, err := src.Table(table)
			if err != nil {
				return nil, err
			}
			return t.Schema, nil
		},
		Snapshot: snap,
		Obs:      reg,
		Spans:    spans,
		Retry:    retry.Policy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Multiplier: 2, Jitter: 0.5},
	})
	fmt.Printf("opdeltad: shipping source %q from %s to %s\n", source, srcDir, serverAddr)

	if rate <= 0 {
		rate = 200
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	// Resume load generation past any id a previous run issued: ids are
	// issued in increasing order and deletes only target ids at least 8
	// behind the head, so the surviving max part_id is within 2 of the
	// last issued id — a 16-id stride clears it with room to spare.
	nextID := 0
	tbl, err := src.Table("parts")
	if err != nil {
		return err
	}
	pkIdx, _ := tbl.Schema.ColIndex("part_id")
	if err := src.ScanTable(nil, "parts", func(row catalog.Tuple) error {
		if id := int(row[pkIdx].Int()); id > nextID {
			nextID = id
		}
		return nil
	}); err != nil {
		return err
	}
	if nextID > 0 {
		nextID += 16
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(time.Second / time.Duration(rate))
		defer ticker.Stop()
		id := nextID
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			id++
			stmt := fmt.Sprintf(`INSERT INTO parts (part_id, status, qty) VALUES (%d, 'new', %d)`, id, id%1000)
			switch {
			case id%8 == 0:
				stmt = fmt.Sprintf(`UPDATE parts SET status = 'hot' WHERE part_id = %d`, id-4)
			case id%16 == 9:
				stmt = fmt.Sprintf(`DELETE FROM parts WHERE part_id = %d`, id-8)
			}
			if _, err := capture.Exec(nil, stmt); err != nil {
				fail(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := sh.Run(stop); err != nil {
			fail(fmt.Errorf("shipper: %w", err))
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	var timeout <-chan time.Time
	if duration > 0 {
		tm := time.NewTimer(duration)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case <-sig:
		fmt.Println("opdeltad: signal received, draining")
	case <-timeout:
	case <-stop:
	}
	cancel()
	wg.Wait()
	fmt.Printf("opdeltad: shipper drained at acked seq %d\n", sh.Acked())
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// bridgeConns relays bytes between two connections until either side
// closes, then closes both. Writes onto a fault NetConn run the fault
// schedule, so frames relayed through the bridge inherit its delays.
func bridgeConns(a, b net.Conn) {
	relay := func(dst, src net.Conn) {
		io.Copy(dst, src)
		dst.Close()
		src.Close()
	}
	go relay(a, b)
	go relay(b, a)
}
