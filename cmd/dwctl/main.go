// Command dwctl manages a warehouse database: initialize it, integrate
// value-delta or op-delta files produced by opdeltad, and run ad-hoc
// queries.
//
// Usage:
//
//	dwctl -dir WH init -ddl "CREATE TABLE parts (...)"
//	dwctl -dir WH apply-deltas -table parts -file parts.000001.delta
//	dwctl -dir WH apply-ops -table parts -file parts.000001.ops
//	dwctl -dir WH query -sql "SELECT * FROM parts WHERE part_id < 10"
//	dwctl -dir WH stats
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strings"

	"opdelta/internal/engine"
	"opdelta/internal/extract"
	"opdelta/internal/loadutil"
	"opdelta/internal/opdelta"
	"opdelta/internal/warehouse"
)

func main() {
	dir := flag.String("dir", "", "warehouse database directory (required)")
	flag.Parse()
	args := flag.Args()
	if *dir == "" || len(args) == 0 {
		usage()
	}
	db, err := engine.Open(*dir, engine.Options{})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "init":
		runInit(db, rest)
	case "apply-deltas":
		runApplyDeltas(db, rest)
	case "apply-ops":
		runApplyOps(db, rest)
	case "query":
		runQuery(db, rest)
	case "stats":
		runStats(db)
	case "index":
		runIndex(db, rest)
	default:
		usage()
	}
}

func runInit(db *engine.DB, args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	ddl := fs.String("ddl", "", "CREATE TABLE statement (or @file to read one per line)")
	fs.Parse(args)
	if *ddl == "" {
		fatal(fmt.Errorf("init needs -ddl"))
	}
	stmts := []string{*ddl}
	if strings.HasPrefix(*ddl, "@") {
		data, err := os.ReadFile((*ddl)[1:])
		if err != nil {
			fatal(err)
		}
		stmts = nil
		for _, line := range strings.Split(string(data), ";") {
			if s := strings.TrimSpace(line); s != "" {
				stmts = append(stmts, s)
			}
		}
	}
	for _, s := range stmts {
		if _, err := db.Exec(nil, s); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("initialized %d table(s): %s\n", len(stmts), strings.Join(db.Tables(), ", "))
}

func runApplyDeltas(db *engine.DB, args []string) {
	fs := flag.NewFlagSet("apply-deltas", flag.ExitOnError)
	table := fs.String("table", "parts", "destination table")
	file := fs.String("file", "", "delta file from opdeltad (required)")
	fs.Parse(args)
	if *file == "" {
		fatal(fmt.Errorf("apply-deltas needs -file"))
	}
	tbl, err := db.Table(*table)
	if err != nil {
		fatal(err)
	}
	deltas, err := extract.ReadDeltaFile(*file, tbl.Schema)
	if err != nil {
		fatal(err)
	}
	w := warehouse.New(db)
	if err := w.RegisterReplica(*table, tbl.Schema, pkName(tbl), tsName(tbl)); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		fatal(err)
	}
	stats, err := (&warehouse.ValueDeltaIntegrator{W: w}).Apply(deltas)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("applied %d value deltas (%d statements, %d txn) in %s\n",
		stats.Records, stats.Statements, stats.Txns, stats.Duration.Round(0))
}

func runApplyOps(db *engine.DB, args []string) {
	fs := flag.NewFlagSet("apply-ops", flag.ExitOnError)
	table := fs.String("table", "parts", "destination table")
	file := fs.String("file", "", "ops file from opdeltad (required)")
	group := fs.Bool("group-by-txn", true, "group ops of one source txn into one warehouse txn")
	fs.Parse(args)
	if *file == "" {
		fatal(fmt.Errorf("apply-ops needs -file"))
	}
	tbl, err := db.Table(*table)
	if err != nil {
		fatal(err)
	}
	ops, err := readOpsFile(*file, tbl)
	if err != nil {
		fatal(err)
	}
	w := warehouse.New(db)
	if err := w.RegisterReplica(*table, tbl.Schema, pkName(tbl), tsName(tbl)); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		fatal(err)
	}
	stats, err := (&warehouse.OpDeltaIntegrator{W: w, GroupByTxn: *group}).Apply(ops)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("applied %d ops (%d statements, %d txns) in %s\n",
		stats.Records, stats.Statements, stats.Txns, stats.Duration.Round(0))
}

func readOpsFile(path string, tbl *engine.Table) ([]*opdelta.Op, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ops []*opdelta.Op
	pos := 0
	for pos+4 <= len(data) {
		sz := int(binary.LittleEndian.Uint32(data[pos:]))
		if pos+4+sz > len(data) {
			return nil, fmt.Errorf("truncated ops file at offset %d", pos)
		}
		op, _, err := opdelta.DecodeOp(data[pos+4:pos+4+sz], tbl.Schema)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		pos += 4 + sz
	}
	return ops, nil
}

func runQuery(db *engine.DB, args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	sql := fs.String("sql", "", "SELECT statement (required)")
	limit := fs.Int("limit", 20, "max rows to print")
	fs.Parse(args)
	if *sql == "" {
		fatal(fmt.Errorf("query needs -sql"))
	}
	schema, rows, err := db.Query(nil, *sql)
	if err != nil {
		fatal(err)
	}
	var heads []string
	for _, c := range schema.Columns() {
		heads = append(heads, c.Name)
	}
	fmt.Println(strings.Join(heads, "\t"))
	for i, row := range rows {
		if i >= *limit {
			fmt.Printf("... (%d more rows)\n", len(rows)-*limit)
			break
		}
		if err := loadutil.WriteTupleASCII(os.Stdout, row); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

func runIndex(db *engine.DB, args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	table := fs.String("table", "parts", "table to index")
	column := fs.String("column", "", "column to index (required)")
	drop := fs.Bool("drop", false, "drop the index instead of creating it")
	fs.Parse(args)
	if *column == "" {
		fatal(fmt.Errorf("index needs -column"))
	}
	var err error
	if *drop {
		err = db.DropSecondaryIndex(*table, *column)
	} else {
		err = db.CreateSecondaryIndex(*table, *column)
	}
	if err != nil {
		fatal(err)
	}
	t, _ := db.Table(*table)
	fmt.Printf("indexes on %s: %v\n", *table, t.SecondaryIndexes())
}

func runStats(db *engine.DB) {
	for _, name := range db.Tables() {
		t, err := db.Table(name)
		if err != nil {
			continue
		}
		io := t.Heap().Disk().Stats()
		pool := t.Heap().Pool().Stats()
		fmt.Printf("%-24s rows=%-9d pages=%-6d reads=%-6d writes=%-6d pool(hit=%d miss=%d evict=%d)\n",
			name, t.NumRows(), t.Heap().NumPages(), io.Reads, io.Writes,
			pool.Hits, pool.Misses, pool.Evictions)
	}
	w := db.WAL().Stats()
	fmt.Printf("%-24s appended=%d flushes=%d syncs=%d rotations=%d\n", "(wal)", w.Appended, w.Flushes, w.Syncs, w.Rotations)
}

func pkName(t *engine.Table) string {
	if t.PKCol < 0 {
		return ""
	}
	return t.Schema.Column(t.PKCol).Name
}

func tsName(t *engine.Table) string {
	if t.TSCol < 0 {
		return ""
	}
	return t.Schema.Column(t.TSCol).Name
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dwctl -dir WH <command> [flags]
commands: init, apply-deltas, apply-ops, query, index, stats`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwctl:", err)
	os.Exit(1)
}
